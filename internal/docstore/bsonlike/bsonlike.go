// Package bsonlike implements a BSON-style binary document encoding for the
// MongoDB baseline of §6. Like BSON it is sequential — element type byte,
// null-terminated key name, then the value — so locating a key scans
// elements from the start (checking key existence is cheaper than decoding
// a value, matching the projection behaviour the paper observes in §6.3),
// and the per-element type-plus-keyname overhead can make records larger
// than the original JSON (§6.2).
package bsonlike

import (
	"encoding/binary"
	"fmt"
	"math"

	"github.com/sinewdata/sinew/internal/jsonx"
)

// Element type tags (a subset of BSON's).
const (
	tagFloat  = 0x01
	tagString = 0x02
	tagDoc    = 0x03
	tagArray  = 0x04
	tagBool   = 0x08
	tagNull   = 0x0a
	tagInt64  = 0x12
)

// Encode serializes a document: int32 total length, elements, 0x00
// terminator.
func Encode(doc *jsonx.Doc) ([]byte, error) {
	body := make([]byte, 4) // length patched below
	var err error
	for _, m := range doc.Members() {
		body, err = appendElement(body, m.Key, m.Val)
		if err != nil {
			return nil, err
		}
	}
	body = append(body, 0x00)
	binary.LittleEndian.PutUint32(body, uint32(len(body)))
	return body, nil
}

func appendElement(out []byte, key string, v jsonx.Value) ([]byte, error) {
	switch v.Kind {
	case jsonx.Null:
		out = append(out, tagNull)
		out = appendCString(out, key)
		return out, nil
	case jsonx.Bool:
		out = append(out, tagBool)
		out = appendCString(out, key)
		if v.B {
			return append(out, 1), nil
		}
		return append(out, 0), nil
	case jsonx.Int:
		out = append(out, tagInt64)
		out = appendCString(out, key)
		return binary.LittleEndian.AppendUint64(out, uint64(v.I)), nil
	case jsonx.Float:
		out = append(out, tagFloat)
		out = appendCString(out, key)
		return binary.LittleEndian.AppendUint64(out, math.Float64bits(v.F)), nil
	case jsonx.String:
		out = append(out, tagString)
		out = appendCString(out, key)
		out = binary.LittleEndian.AppendUint32(out, uint32(len(v.S)+1))
		out = append(out, v.S...)
		return append(out, 0x00), nil
	case jsonx.Object:
		sub, err := Encode(v.Obj)
		if err != nil {
			return nil, err
		}
		out = append(out, tagDoc)
		out = appendCString(out, key)
		return append(out, sub...), nil
	case jsonx.Array:
		// BSON arrays are documents keyed "0", "1", ...
		arrDoc := jsonx.NewDoc()
		for i, e := range v.A {
			arrDoc.Set(itoa(i), e)
		}
		sub, err := Encode(arrDoc)
		if err != nil {
			return nil, err
		}
		out = append(out, tagArray)
		out = appendCString(out, key)
		return append(out, sub...), nil
	default:
		return nil, fmt.Errorf("bsonlike: cannot encode %v", v.Kind)
	}
}

func appendCString(out []byte, s string) []byte {
	out = append(out, s...)
	return append(out, 0x00)
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [20]byte
	pos := len(buf)
	for i > 0 {
		pos--
		buf[pos] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[pos:])
}

// walker steps through elements sequentially.
type walker struct {
	b   []byte
	pos int
	end int
}

func newWalker(data []byte) (*walker, error) {
	if len(data) < 5 {
		return nil, fmt.Errorf("bsonlike: record too short")
	}
	n := int(binary.LittleEndian.Uint32(data))
	if n > len(data) || n < 5 {
		return nil, fmt.Errorf("bsonlike: bad record length %d", n)
	}
	return &walker{b: data, pos: 4, end: n - 1}, nil
}

// next returns the next element's tag, key, and raw value bytes.
func (w *walker) next() (tag byte, key string, val []byte, ok bool, err error) {
	if w.pos >= w.end {
		return 0, "", nil, false, nil
	}
	tag = w.b[w.pos]
	w.pos++
	// Key cstring.
	start := w.pos
	for w.pos < w.end && w.b[w.pos] != 0x00 {
		w.pos++
	}
	if w.pos >= w.end+1 {
		return 0, "", nil, false, fmt.Errorf("bsonlike: unterminated key")
	}
	key = string(w.b[start:w.pos])
	w.pos++ // skip NUL
	vstart := w.pos
	switch tag {
	case tagNull:
	case tagBool:
		w.pos++
	case tagInt64, tagFloat:
		w.pos += 8
	case tagString:
		if w.pos+4 > w.end {
			return 0, "", nil, false, fmt.Errorf("bsonlike: truncated string")
		}
		n := int(binary.LittleEndian.Uint32(w.b[w.pos:]))
		w.pos += 4 + n
	case tagDoc, tagArray:
		if w.pos+4 > w.end {
			return 0, "", nil, false, fmt.Errorf("bsonlike: truncated subdocument")
		}
		n := int(binary.LittleEndian.Uint32(w.b[w.pos:]))
		w.pos += n
	default:
		return 0, "", nil, false, fmt.Errorf("bsonlike: unknown tag 0x%02x", tag)
	}
	if w.pos > w.end {
		return 0, "", nil, false, fmt.Errorf("bsonlike: truncated element %q", key)
	}
	return tag, key, w.b[vstart:w.pos], true, nil
}

// decodeValue converts raw element bytes into a jsonx value.
func decodeValue(tag byte, val []byte) (jsonx.Value, error) {
	switch tag {
	case tagNull:
		return jsonx.NullValue(), nil
	case tagBool:
		return jsonx.BoolValue(val[0] != 0), nil
	case tagInt64:
		return jsonx.IntValue(int64(binary.LittleEndian.Uint64(val))), nil
	case tagFloat:
		return jsonx.FloatValue(math.Float64frombits(binary.LittleEndian.Uint64(val))), nil
	case tagString:
		n := int(binary.LittleEndian.Uint32(val))
		return jsonx.StringValue(string(val[4 : 4+n-1])), nil
	case tagDoc:
		doc, err := Decode(val)
		if err != nil {
			return jsonx.Value{}, err
		}
		return jsonx.ObjectValue(doc), nil
	case tagArray:
		doc, err := Decode(val)
		if err != nil {
			return jsonx.Value{}, err
		}
		elems := make([]jsonx.Value, doc.Len())
		for i, m := range doc.Members() {
			elems[i] = m.Val
		}
		return jsonx.ArrayValue(elems...), nil
	default:
		return jsonx.Value{}, fmt.Errorf("bsonlike: unknown tag 0x%02x", tag)
	}
}

// Decode reconstructs the full document.
func Decode(data []byte) (*jsonx.Doc, error) {
	w, err := newWalker(data)
	if err != nil {
		return nil, err
	}
	doc := jsonx.NewDoc()
	for {
		tag, key, val, ok, err := w.next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return doc, nil
		}
		v, err := decodeValue(tag, val)
		if err != nil {
			return nil, err
		}
		doc.Set(key, v)
	}
}

// Has reports whether a (possibly dotted) path exists, scanning keys
// without decoding values — the cheap existence check of §6.3.
func Has(data []byte, path string) (bool, error) {
	head, rest := splitPath(path)
	w, err := newWalker(data)
	if err != nil {
		return false, err
	}
	for {
		tag, key, val, ok, err := w.next()
		if err != nil || !ok {
			return false, err
		}
		if key != head {
			continue
		}
		if rest == "" {
			return tag != tagNull, nil
		}
		if tag != tagDoc {
			return false, nil
		}
		return Has(val, rest)
	}
}

// ExtractPath decodes the value at a dotted path; found=false when absent
// or when an intermediate step is not a document.
func ExtractPath(data []byte, path string) (jsonx.Value, bool, error) {
	head, rest := splitPath(path)
	w, err := newWalker(data)
	if err != nil {
		return jsonx.Value{}, false, err
	}
	for {
		tag, key, val, ok, err := w.next()
		if err != nil || !ok {
			return jsonx.Value{}, false, err
		}
		if key != head {
			continue
		}
		if rest != "" {
			if tag != tagDoc {
				return jsonx.Value{}, false, nil
			}
			return ExtractPath(val, rest)
		}
		v, err := decodeValue(tag, val)
		if err != nil {
			return jsonx.Value{}, false, err
		}
		if v.Kind == jsonx.Null {
			return jsonx.Value{}, false, nil
		}
		return v, true, nil
	}
}

func splitPath(path string) (head, rest string) {
	for i := 0; i < len(path); i++ {
		if path[i] == '.' {
			return path[:i], path[i+1:]
		}
	}
	return path, ""
}
