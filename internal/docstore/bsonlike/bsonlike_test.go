package bsonlike

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/sinewdata/sinew/internal/jsonx"
)

func doc(t *testing.T, s string) *jsonx.Doc {
	t.Helper()
	d, err := jsonx.ParseDocument([]byte(s))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []string{
		`{"a":1,"b":2.5,"c":"text","d":true,"e":false,"f":null}`,
		`{"nested":{"x":{"y":[1,2,3]}}}`,
		`{"arr":[1,"two",false,null,{"k":"v"}]}`,
		`{}`,
		`{"unicode":"héllo 日本","empty":""}`,
	}
	for _, s := range cases {
		in := doc(t, s)
		data, err := Encode(in)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		out, err := Decode(data)
		if err != nil {
			t.Fatalf("%s: decode: %v", s, err)
		}
		if !jsonx.ObjectValue(in).Equal(jsonx.ObjectValue(out)) {
			t.Errorf("round trip mismatch for %s:\n got %v", s, jsonx.ObjectValue(out))
		}
	}
}

func TestExtractPath(t *testing.T) {
	data, _ := Encode(doc(t, `{"a":1,"user":{"id":7,"geo":{"city":"nyc"}},"n":null}`))
	v, ok, err := ExtractPath(data, "user.id")
	if err != nil || !ok || v.I != 7 {
		t.Fatalf("user.id = %v %v %v", v, ok, err)
	}
	v, ok, _ = ExtractPath(data, "user.geo.city")
	if !ok || v.S != "nyc" {
		t.Fatalf("city = %v %v", v, ok)
	}
	if _, ok, _ := ExtractPath(data, "missing"); ok {
		t.Error("missing key found")
	}
	if _, ok, _ := ExtractPath(data, "a.b"); ok {
		t.Error("descent through a scalar should fail")
	}
	// Explicit null reads as absent.
	if _, ok, _ := ExtractPath(data, "n"); ok {
		t.Error("null value should read as absent")
	}
}

func TestHas(t *testing.T) {
	data, _ := Encode(doc(t, `{"a":1,"user":{"id":7},"n":null}`))
	cases := map[string]bool{
		"a": true, "user": true, "user.id": true,
		"missing": false, "n": false, "user.missing": false,
	}
	for path, want := range cases {
		got, err := Has(data, path)
		if err != nil || got != want {
			t.Errorf("Has(%q) = %v %v, want %v", path, got, err, want)
		}
	}
}

func TestCorruptInputsDontPanic(t *testing.T) {
	good, _ := Encode(mustDoc(t))
	for cut := 0; cut < len(good); cut++ {
		_, _ = Decode(good[:cut])
		_, _, _ = ExtractPath(good[:cut], "a")
	}
	if _, err := Decode([]byte{1, 0, 0}); err == nil {
		t.Error("short record should error")
	}
	// Length field larger than the data.
	bad := append([]byte(nil), good...)
	bad[0] = 0xff
	if _, err := Decode(bad); err == nil {
		t.Error("bad length should error")
	}
}

func mustDoc(t *testing.T) *jsonx.Doc {
	return doc(t, `{"a":1,"s":"hello","nested":{"x":true}}`)
}

func TestPropertyRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := jsonx.NewDoc()
		for i := 0; i < 1+r.Intn(10); i++ {
			key := string(rune('a' + r.Intn(26)))
			switch r.Intn(6) {
			case 0:
				d.Set(key, jsonx.IntValue(r.Int63()-r.Int63()))
			case 1:
				d.Set(key, jsonx.FloatValue(r.NormFloat64()))
			case 2:
				d.Set(key, jsonx.StringValue(randText(r)))
			case 3:
				d.Set(key, jsonx.BoolValue(r.Intn(2) == 0))
			case 4:
				d.Set(key, jsonx.ArrayValue(jsonx.IntValue(1), jsonx.StringValue("x")))
			case 5:
				sub := jsonx.NewDoc()
				sub.Set("inner", jsonx.IntValue(int64(r.Intn(100))))
				d.Set(key, jsonx.ObjectValue(sub))
			}
		}
		data, err := Encode(d)
		if err != nil {
			return false
		}
		out, err := Decode(data)
		if err != nil {
			return false
		}
		return jsonx.ObjectValue(d).Equal(jsonx.ObjectValue(out))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}

func randText(r *rand.Rand) string {
	b := make([]byte, r.Intn(16))
	for i := range b {
		b[i] = byte(32 + r.Intn(90))
	}
	return string(b)
}
