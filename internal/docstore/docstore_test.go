package docstore

import (
	"errors"
	"testing"

	"github.com/sinewdata/sinew/internal/jsonx"
)

func doc(t *testing.T, s string) *jsonx.Doc {
	t.Helper()
	d, err := jsonx.ParseDocument([]byte(s))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func seedStore(t *testing.T) (*Store, *Collection) {
	t.Helper()
	s := Open()
	c := s.Create("users")
	docs := []string{
		`{"name":"ada","age":36,"langs":["asm","math"],"addr":{"city":"london"}}`,
		`{"name":"grace","age":85,"langs":["cobol"],"addr":{"city":"nyc"}}`,
		`{"name":"alan","age":41,"langs":["asm"]}`,
		`{"name":"kurt","score":9.5}`,
	}
	for _, d := range docs {
		if _, err := c.Insert(doc(t, d)); err != nil {
			t.Fatal(err)
		}
	}
	return s, c
}

func TestInsertAssignsIDs(t *testing.T) {
	_, c := seedStore(t)
	rows, err := c.Find(Eq{Path: "name", Val: jsonx.StringValue("ada")}, []string{"_id"})
	if err != nil || len(rows) != 1 {
		t.Fatalf("rows=%v err=%v", rows, err)
	}
	if rows[0][0].I != 0 {
		t.Errorf("first _id = %v", rows[0][0])
	}
	if c.Count() != 4 {
		t.Errorf("count = %d", c.Count())
	}
}

func TestFilters(t *testing.T) {
	_, c := seedStore(t)
	cases := []struct {
		name string
		f    Filter
		want int64
	}{
		{"eq", Eq{Path: "name", Val: jsonx.StringValue("alan")}, 1},
		{"eq miss", Eq{Path: "name", Val: jsonx.StringValue("x")}, 0},
		{"eq nested", Eq{Path: "addr.city", Val: jsonx.StringValue("nyc")}, 1},
		{"range", Range{Path: "age", Lo: 40, Hi: 90}, 2},
		{"range non-numeric miss", Range{Path: "name", Lo: 0, Hi: 1}, 0},
		{"exists", Exists{Path: "score"}, 1},
		{"exists nested", Exists{Path: "addr.city"}, 2},
		{"contains", Contains{Path: "langs", Val: jsonx.StringValue("asm")}, 2},
		{"contains miss", Contains{Path: "langs", Val: jsonx.StringValue("go")}, 0},
		{"and", And{Range{Path: "age", Lo: 0, Hi: 50}, Contains{Path: "langs", Val: jsonx.StringValue("asm")}}, 2},
		{"all", All{}, 4},
	}
	for _, cse := range cases {
		n, err := c.CountWhere(cse.f)
		if err != nil {
			t.Fatalf("%s: %v", cse.name, err)
		}
		if n != cse.want {
			t.Errorf("%s: %d, want %d", cse.name, n, cse.want)
		}
	}
}

func TestProjectionAbsentIsNull(t *testing.T) {
	_, c := seedStore(t)
	rows, err := c.Find(All{}, []string{"name", "score"})
	if err != nil || len(rows) != 4 {
		t.Fatalf("rows=%d err=%v", len(rows), err)
	}
	var nulls int
	for _, r := range rows {
		if r[1].Kind == jsonx.Null {
			nulls++
		}
	}
	if nulls != 3 {
		t.Errorf("null scores = %d, want 3", nulls)
	}
}

func TestGroupSumAndDistinct(t *testing.T) {
	s := Open()
	c := s.Create("t")
	for i := 0; i < 30; i++ {
		d := jsonx.NewDoc()
		d.Set("k", jsonx.IntValue(int64(i%3)))
		d.Set("v", jsonx.IntValue(int64(i)))
		c.Insert(d)
	}
	groups, err := c.GroupSum(All{}, "k", "")
	if err != nil || len(groups) != 3 || groups["0"] != 10 {
		t.Fatalf("groups = %v err=%v", groups, err)
	}
	sums, _ := c.GroupSum(All{}, "k", "v")
	if sums["0"] != 135 { // 0+3+...+27
		t.Errorf("sum k=0 -> %v", sums["0"])
	}
	distinct, _ := c.DistinctValues(All{}, "k")
	if len(distinct) != 3 {
		t.Errorf("distinct = %v", distinct)
	}
}

func TestUpdateSet(t *testing.T) {
	_, c := seedStore(t)
	n, err := c.UpdateSet(Eq{Path: "name", Val: jsonx.StringValue("ada")}, "age", jsonx.IntValue(37))
	if err != nil || n != 1 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	rows, _ := c.Find(Eq{Path: "name", Val: jsonx.StringValue("ada")}, []string{"age"})
	if rows[0][0].I != 37 {
		t.Errorf("age = %v", rows[0][0])
	}
	// Setting a dotted path creates intermediates.
	c.UpdateSet(Eq{Path: "name", Val: jsonx.StringValue("kurt")}, "addr.city", jsonx.StringValue("vienna"))
	n, _ = c.CountWhere(Eq{Path: "addr.city", Val: jsonx.StringValue("vienna")})
	if n != 1 {
		t.Error("dotted update failed")
	}
}

func TestJoinViaTemp(t *testing.T) {
	s := Open()
	left := s.Create("orders")
	right := s.Create("users")
	for i := 0; i < 20; i++ {
		d := jsonx.NewDoc()
		d.Set("user", jsonx.StringValue([]string{"ada", "grace"}[i%2]))
		d.Set("amount", jsonx.IntValue(int64(i)))
		left.Insert(d)
	}
	for _, name := range []string{"ada", "grace", "alan"} {
		d := jsonx.NewDoc()
		d.Set("name", jsonx.StringValue(name))
		right.Insert(d)
	}
	out, err := s.JoinViaTemp(left, right, "user", "name", Range{Path: "amount", Lo: 0, Hi: 9})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Drop(out.Name())
	if out.Count() != 10 {
		t.Errorf("joined = %d, want 10", out.Count())
	}
	// Joined docs carry both sides.
	rows, _ := out.Find(All{}, []string{"left.user", "right.name"})
	for _, r := range rows {
		if !r[0].Equal(r[1]) {
			t.Errorf("join mismatch: %v vs %v", r[0], r[1])
		}
	}
}

func TestScratchBudgetExhaustion(t *testing.T) {
	s := Open()
	s.ScratchBudget = 500
	left := s.Create("l")
	right := s.Create("r")
	for i := 0; i < 50; i++ {
		d := jsonx.NewDoc()
		d.Set("k", jsonx.IntValue(int64(i)))
		d.Set("pad", jsonx.StringValue("xxxxxxxxxxxxxxxxxxxxxxxx"))
		left.Insert(d)
		e := jsonx.NewDoc()
		e.Set("k", jsonx.IntValue(int64(i)))
		right.Insert(e)
	}
	_, err := s.JoinViaTemp(left, right, "k", "k", All{})
	if !errors.Is(err, ErrScratchExhausted) {
		t.Fatalf("err = %v, want scratch exhaustion", err)
	}
	// Dropped temps release their accounting.
	if s.ScratchUsed() != 0 {
		t.Errorf("scratch used after failure = %d", s.ScratchUsed())
	}
}

func TestBytesReadAccounting(t *testing.T) {
	s, c := seedStore(t)
	s.ResetIO()
	c.Find(All{}, []string{"name"})
	if s.BytesRead() != c.SizeBytes() {
		t.Errorf("read %d, size %d", s.BytesRead(), c.SizeBytes())
	}
}

func TestTotalSizeExcludesTemps(t *testing.T) {
	s, c := seedStore(t)
	base := s.TotalSizeBytes()
	tmp := s.CreateTemp("scratch")
	tmp.InsertRaw(make([]byte, 100))
	if s.TotalSizeBytes() != base {
		t.Error("temp collections should not count toward database size")
	}
	_ = c
}
