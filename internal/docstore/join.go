package docstore

import (
	"fmt"

	"github.com/sinewdata/sinew/internal/docstore/bsonlike"
	"github.com/sinewdata/sinew/internal/jsonx"
)

// JoinViaTemp performs the inner equi-join the way a MongoDB 2.4 client
// must (§6.5): there is no native join, so the "user code" materializes
// explicit intermediate collections — one holding the filtered left side
// keyed by the join value, and one holding the joined output — consuming
// large amounts of scratch space. The result collection name is returned;
// it counts against the store's scratch budget, and exhausting the budget
// aborts with ErrScratchExhausted (the paper's 64M-record DNF).
//
// leftFilter may be All{}. The output documents have members "left" and
// "right" holding the two source documents.
func (s *Store) JoinViaTemp(left, right *Collection, leftPath, rightPath string, leftFilter Filter) (*Collection, error) {
	// Phase 1: materialize the filtered left side into a temp collection,
	// re-keyed by join value (emulating the map phase of the JavaScript
	// map-reduce approach).
	phase1 := s.CreateTemp(left.name + "_join_phase1")
	defer s.Drop(phase1.name)
	// An in-memory index over the temp collection positions by join key;
	// MongoDB would use the temp collection's _id index the same way.
	index := make(map[string][]int64)
	err := left.FindRaw(leftFilter, func(data []byte) error {
		key, ok, err := bsonlike.ExtractPath(data, leftPath)
		if err != nil || !ok {
			return err
		}
		// The map phase re-emits each document through user code: decode
		// and re-encode rather than a raw byte copy (MongoDB 2.4's
		// JavaScript map-reduce pays this on every record).
		doc, err := bsonlike.Decode(data)
		if err != nil {
			return err
		}
		enc, err := bsonlike.Encode(doc)
		if err != nil {
			return err
		}
		pos, err := phase1.InsertRaw(enc)
		if err != nil {
			return err
		}
		index[joinKey(key)] = append(index[joinKey(key)], pos)
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("docstore: join phase 1: %w", err)
	}

	// Phase 2: re-key the entire right side into a second temp collection
	// (the map-reduce emit step has no filter to push, so the whole
	// collection is copied — this is where the scratch space explodes on
	// large datasets, §6.5).
	phase2 := s.CreateTemp(right.name + "_join_phase2")
	defer s.Drop(phase2.name)
	err = right.FindRaw(All{}, func(rdata []byte) error {
		doc, err := bsonlike.Decode(rdata)
		if err != nil {
			return err
		}
		enc, err := bsonlike.Encode(doc)
		if err != nil {
			return err
		}
		_, err = phase2.InsertRaw(enc)
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("docstore: join phase 2: %w", err)
	}

	// Phase 3: stream the re-keyed right side, probe the left temp
	// collection, and materialize joined pairs into the output.
	out := s.CreateTemp(left.name + "_" + right.name + "_joined")
	err = phase2.FindRaw(All{}, func(rdata []byte) error {
		key, ok, err := bsonlike.ExtractPath(rdata, rightPath)
		if err != nil || !ok {
			return err
		}
		for _, pos := range index[joinKey(key)] {
			ldata := phase1.docAt(pos)
			ldoc, err := bsonlike.Decode(ldata)
			if err != nil {
				return err
			}
			rdoc, err := bsonlike.Decode(rdata)
			if err != nil {
				return err
			}
			joined := jsonx.NewDoc()
			joined.Set("left", jsonx.ObjectValue(ldoc))
			joined.Set("right", jsonx.ObjectValue(rdoc))
			if _, err := out.Insert(joined); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		s.Drop(out.name)
		return nil, fmt.Errorf("docstore: join phase 3: %w", err)
	}
	return out, nil
}

func (c *Collection) docAt(pos int64) []byte {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.docs[pos]
}

// joinKey canonicalizes a join value so 2 and 2.0 collide, matching the
// dynamic-typing equality used elsewhere.
func joinKey(v jsonx.Value) string {
	if f, ok := v.AsFloat(); ok {
		return fmt.Sprintf("n:%g", f)
	}
	return "v:" + v.String()
}
