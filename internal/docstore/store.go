// Package docstore is an embedded document database standing in for
// MongoDB in the paper's evaluation (§6.1): collections of BSON-like binary
// documents, filter-based finds, aggregation primitives, in-place updates
// without transactional guarantees, and — crucially — no native join. Joins
// are performed client-side through explicitly materialized intermediate
// collections whose scratch space is budgeted, reproducing the Figure 7
// behaviour where the join runs out of disk at the large scale.
package docstore

import (
	"fmt"
	"sync"

	"github.com/sinewdata/sinew/internal/docstore/bsonlike"
	"github.com/sinewdata/sinew/internal/jsonx"
)

// Store is a set of collections.
type Store struct {
	mu          sync.RWMutex
	collections map[string]*Collection
	// ScratchBudget caps total bytes written to temporary collections
	// (CreateTemp); 0 means unlimited. Exceeding it returns
	// ErrScratchExhausted, the stand-in for "ran out of disk space".
	ScratchBudget int64
	scratchUsed   int64
	bytesRead     int64
}

// BytesRead reports cumulative record bytes visited by reads (the I/O
// model input, mirroring the RDBMS pager).
func (s *Store) BytesRead() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.bytesRead
}

// ResetIO zeroes the read counter between benchmark phases.
func (s *Store) ResetIO() {
	s.mu.Lock()
	s.bytesRead = 0
	s.mu.Unlock()
}

func (s *Store) addRead(n int64) {
	s.mu.Lock()
	s.bytesRead += n
	s.mu.Unlock()
}

// ErrScratchExhausted reports that intermediate collections exceeded the
// configured scratch budget.
var ErrScratchExhausted = fmt.Errorf("docstore: out of scratch disk space for intermediate collections")

// Open creates an empty store.
func Open() *Store {
	return &Store{collections: make(map[string]*Collection)}
}

// Collection holds documents as encoded byte records.
type Collection struct {
	mu     sync.RWMutex
	name   string
	docs   [][]byte
	nextID int64
	temp   bool
	store  *Store
}

// Create makes (or returns) a collection.
func (s *Store) Create(name string) *Collection {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok := s.collections[name]; ok {
		return c
	}
	c := &Collection{name: name, store: s}
	s.collections[name] = c
	return c
}

// Collection returns an existing collection or nil.
func (s *Store) Collection(name string) *Collection {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.collections[name]
}

// CreateTemp makes an intermediate collection charged against the scratch
// budget (client-side joins use these).
func (s *Store) CreateTemp(name string) *Collection {
	c := s.Create(name)
	c.temp = true
	return c
}

// Drop removes a collection, releasing its scratch accounting if temp.
func (s *Store) Drop(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok := s.collections[name]; ok && c.temp {
		s.scratchUsed -= c.SizeBytes()
	}
	delete(s.collections, name)
}

// ScratchUsed reports current temp-collection bytes.
func (s *Store) ScratchUsed() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.scratchUsed
}

// TotalSizeBytes sums the stored size of all non-temp collections (the
// database footprint for Table 3).
func (s *Store) TotalSizeBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var total int64
	for _, c := range s.collections {
		if !c.temp {
			total += c.SizeBytes()
		}
	}
	return total
}

// Insert encodes and stores a document, assigning a sequential _id if none
// is present. It returns the document's position.
func (c *Collection) Insert(doc *jsonx.Doc) (int64, error) {
	if !doc.Has("_id") {
		c.mu.Lock()
		id := c.nextID
		c.nextID++
		c.mu.Unlock()
		doc.Set("_id", jsonx.IntValue(id))
	}
	data, err := bsonlike.Encode(doc)
	if err != nil {
		return 0, err
	}
	return c.InsertRaw(data)
}

// InsertRaw stores an already-encoded document.
func (c *Collection) InsertRaw(data []byte) (int64, error) {
	if c.temp {
		c.store.mu.Lock()
		if c.store.ScratchBudget > 0 && c.store.scratchUsed+int64(len(data)) > c.store.ScratchBudget {
			c.store.mu.Unlock()
			return 0, ErrScratchExhausted
		}
		c.store.scratchUsed += int64(len(data))
		c.store.mu.Unlock()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.docs = append(c.docs, data)
	return int64(len(c.docs) - 1), nil
}

// Name returns the collection name.
func (c *Collection) Name() string { return c.name }

// Count returns the number of documents.
func (c *Collection) Count() int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return int64(len(c.docs))
}

// SizeBytes returns the stored byte size of the collection.
func (c *Collection) SizeBytes() int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var n int64
	for _, d := range c.docs {
		n += int64(len(d))
	}
	return n
}

// ---------- Filters ----------

// Filter matches encoded documents. Implementations evaluate directly on
// the BSON-like bytes (as MongoDB does), so existence tests avoid decoding.
type Filter interface {
	Matches(data []byte) (bool, error)
}

// All matches every document.
type All struct{}

// Matches implements Filter.
func (All) Matches([]byte) (bool, error) { return true, nil }

// Eq matches path == value.
type Eq struct {
	Path string
	Val  jsonx.Value
}

// Matches implements Filter.
func (f Eq) Matches(data []byte) (bool, error) {
	v, ok, err := bsonlike.ExtractPath(data, f.Path)
	if err != nil || !ok {
		return false, err
	}
	return v.Equal(f.Val), nil
}

// Range matches lo <= path <= hi for numeric values. The value is
// extracted once and compared twice (the paper notes MongoDB precomputes
// the value for BETWEEN-style predicates, §6.4).
type Range struct {
	Path   string
	Lo, Hi float64
}

// Matches implements Filter.
func (f Range) Matches(data []byte) (bool, error) {
	v, ok, err := bsonlike.ExtractPath(data, f.Path)
	if err != nil || !ok {
		return false, err
	}
	x, numeric := v.AsFloat()
	if !numeric {
		return false, nil
	}
	return x >= f.Lo && x <= f.Hi, nil
}

// Exists matches documents where the path is present (and non-null).
type Exists struct{ Path string }

// Matches implements Filter.
func (f Exists) Matches(data []byte) (bool, error) {
	return bsonlike.Has(data, f.Path)
}

// Contains matches documents whose array at Path contains Val.
type Contains struct {
	Path string
	Val  jsonx.Value
}

// Matches implements Filter.
func (f Contains) Matches(data []byte) (bool, error) {
	v, ok, err := bsonlike.ExtractPath(data, f.Path)
	if err != nil || !ok {
		return false, err
	}
	if v.Kind != jsonx.Array {
		return false, nil
	}
	for _, e := range v.A {
		if e.Equal(f.Val) {
			return true, nil
		}
	}
	return false, nil
}

// And conjoins filters.
type And []Filter

// Matches implements Filter.
func (fs And) Matches(data []byte) (bool, error) {
	for _, f := range fs {
		ok, err := f.Matches(data)
		if err != nil || !ok {
			return false, err
		}
	}
	return true, nil
}

// ---------- Reads ----------

// Project extracts the given paths from each matching document; a nil
// paths slice decodes whole documents.
func (c *Collection) Find(filter Filter, paths []string) ([][]jsonx.Value, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.store != nil {
		var n int64
		for _, data := range c.docs {
			n += int64(len(data))
		}
		c.store.addRead(n)
	}
	var out [][]jsonx.Value
	for _, data := range c.docs {
		ok, err := filter.Matches(data)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		if paths == nil {
			doc, err := bsonlike.Decode(data)
			if err != nil {
				return nil, err
			}
			out = append(out, []jsonx.Value{jsonx.ObjectValue(doc)})
			continue
		}
		row := make([]jsonx.Value, len(paths))
		for i, p := range paths {
			v, found, err := bsonlike.ExtractPath(data, p)
			if err != nil {
				return nil, err
			}
			if found {
				row[i] = v
			}
		}
		out = append(out, row)
	}
	return out, nil
}

// FindRaw streams matching raw records to fn (join machinery uses this to
// avoid decode costs it wouldn't pay in MongoDB either).
func (c *Collection) FindRaw(filter Filter, fn func(data []byte) error) error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.store != nil {
		var n int64
		for _, data := range c.docs {
			n += int64(len(data))
		}
		c.store.addRead(n)
	}
	for _, data := range c.docs {
		ok, err := filter.Matches(data)
		if err != nil {
			return err
		}
		if !ok {
			continue
		}
		if err := fn(data); err != nil {
			return err
		}
	}
	return nil
}

// CountWhere counts matches without decoding.
func (c *Collection) CountWhere(filter Filter) (int64, error) {
	var n int64
	err := c.FindRaw(filter, func([]byte) error { n++; return nil })
	return n, err
}

// ---------- Aggregation primitives ----------

// GroupSum groups matching documents by keyPath and sums sumPath per group
// (the aggregation-pipeline stand-in used for NoBench Q10).
func (c *Collection) GroupSum(filter Filter, keyPath, sumPath string) (map[string]float64, error) {
	groups := make(map[string]float64)
	err := c.FindRaw(filter, func(data []byte) error {
		k, ok, err := bsonlike.ExtractPath(data, keyPath)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		var add float64
		if sumPath == "" {
			add = 1 // count
		} else {
			v, ok, err := bsonlike.ExtractPath(data, sumPath)
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
			f, numeric := v.AsFloat()
			if !numeric {
				return nil
			}
			add = f
		}
		groups[k.String()] += add
		return nil
	})
	return groups, err
}

// DistinctValues returns the set of distinct values at keyPath among
// matching documents.
func (c *Collection) DistinctValues(filter Filter, keyPath string) (map[string]struct{}, error) {
	out := make(map[string]struct{})
	err := c.FindRaw(filter, func(data []byte) error {
		v, ok, err := bsonlike.ExtractPath(data, keyPath)
		if err != nil || !ok {
			return err
		}
		out[v.String()] = struct{}{}
		return nil
	})
	return out, err
}

// ---------- Updates ----------

// UpdateSet sets path = val on every matching document, rewriting records
// in place. No transactional guarantees: a failure mid-way leaves earlier
// updates applied (MongoDB 2.4 semantics the paper benchmarks against).
func (c *Collection) UpdateSet(filter Filter, path string, val jsonx.Value) (int64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var updated int64
	for i, data := range c.docs {
		ok, err := filter.Matches(data)
		if err != nil {
			return updated, err
		}
		if !ok {
			continue
		}
		doc, err := bsonlike.Decode(data)
		if err != nil {
			return updated, err
		}
		setPath(doc, path, val)
		enc, err := bsonlike.Encode(doc)
		if err != nil {
			return updated, err
		}
		c.docs[i] = enc
		updated++
	}
	return updated, nil
}

// setPath sets a dotted path, creating intermediate documents.
func setPath(doc *jsonx.Doc, path string, val jsonx.Value) {
	for i := 0; i < len(path); i++ {
		if path[i] != '.' {
			continue
		}
		head, rest := path[:i], path[i+1:]
		sub, ok := doc.Get(head)
		if !ok || sub.Kind != jsonx.Object {
			nd := jsonx.NewDoc()
			doc.Set(head, jsonx.ObjectValue(nd))
			setPath(nd, rest, val)
			return
		}
		setPath(sub.Obj, rest, val)
		return
	}
	doc.Set(path, val)
}
