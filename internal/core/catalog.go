package core

import (
	"fmt"
	"sort"
	"sync"

	"github.com/sinewdata/sinew/internal/serial"
)

// Catalog is Sinew's two-part catalog (§3.1.2, Figure 4): a global
// attribute dictionary mapping every (key, type) pair across all
// collections to a compact ID, plus per-collection column records tracking
// occurrence counts, cardinality estimates, storage mode (physical or
// virtual), and the dirty flag driving the materializer.
type Catalog struct {
	mu     sync.RWMutex
	dict   *serial.Dictionary
	tables map[string]*CollectionCatalog
}

// CollectionCatalog is the per-table half of the catalog (Figure 4b).
type CollectionCatalog struct {
	mu   sync.RWMutex
	name string
	// columns is keyed by attribute ID.
	columns map[uint32]*ColumnInfo
	// docCount is the number of loaded documents (density denominator).
	docCount int64
	// nextID assigns _id values.
	nextID int64
	// latch serializes the loader and the column materializer (§3.1.4:
	// "the materializer and loader are not allowed to run concurrently").
	latch sync.Mutex
}

// ColumnInfo is one logical column's catalog record.
type ColumnInfo struct {
	AttrID uint32
	Key    string
	Type   serial.AttrType
	// Count is the number of documents containing the attribute.
	Count int64
	// Materialized is the *target* storage mode set by the schema
	// analyzer; the physical schema converges to it via the materializer.
	Materialized bool
	// Dirty means values may be split between the reservoir and the
	// physical column; queries must COALESCE (§3.1.4).
	Dirty bool
	// PhysicalName is the RDBMS column name once one exists ("" while
	// purely virtual).
	PhysicalName string

	// distinct approximates cardinality: exact up to cardTrackLimit
	// distinct values, then pinned to "many".
	distinct     map[string]struct{}
	distinctFull bool
}

// cardTrackLimit bounds per-column distinct tracking; beyond it the column
// is simply "high cardinality", which is all the analyzer's threshold test
// needs.
const cardTrackLimit = 4096

// Cardinality returns the (possibly saturated) distinct-value estimate.
func (c *ColumnInfo) Cardinality() int64 {
	if c.distinctFull {
		return cardTrackLimit + 1
	}
	return int64(len(c.distinct))
}

// observe records one occurrence of the attribute with the given value
// hash.
func (c *ColumnInfo) observe(valueKey string) {
	c.Count++
	if c.distinctFull {
		return
	}
	if c.distinct == nil {
		c.distinct = make(map[string]struct{})
	}
	c.distinct[valueKey] = struct{}{}
	if len(c.distinct) > cardTrackLimit {
		c.distinctFull = true
		c.distinct = nil
	}
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{dict: serial.NewDictionary(), tables: make(map[string]*CollectionCatalog)}
}

// Dict returns the global attribute dictionary.
func (cat *Catalog) Dict() *serial.Dictionary { return cat.dict }

// Collection returns (creating if needed) the per-table catalog.
func (cat *Catalog) Collection(name string) *CollectionCatalog {
	cat.mu.Lock()
	defer cat.mu.Unlock()
	tc, ok := cat.tables[name]
	if !ok {
		tc = &CollectionCatalog{name: name, columns: make(map[uint32]*ColumnInfo)}
		cat.tables[name] = tc
	}
	return tc
}

// Lookup returns the per-table catalog if it exists.
func (cat *Catalog) Lookup(name string) (*CollectionCatalog, bool) {
	cat.mu.RLock()
	defer cat.mu.RUnlock()
	tc, ok := cat.tables[name]
	return tc, ok
}

// Collections lists catalog table names, sorted.
func (cat *Catalog) Collections() []string {
	cat.mu.RLock()
	defer cat.mu.RUnlock()
	out := make([]string, 0, len(cat.tables))
	for n := range cat.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// DocCount returns the loaded document count.
func (tc *CollectionCatalog) DocCount() int64 {
	tc.mu.RLock()
	defer tc.mu.RUnlock()
	return tc.docCount
}

// NextID reserves n consecutive _id values and returns the first.
func (tc *CollectionCatalog) NextID(n int64) int64 {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	id := tc.nextID
	tc.nextID += n
	return id
}

// Column returns the catalog record for an attribute ID, or nil.
func (tc *CollectionCatalog) Column(attrID uint32) *ColumnInfo {
	tc.mu.RLock()
	defer tc.mu.RUnlock()
	return tc.columns[attrID]
}

// ColumnsByKey returns all catalog records (one per type) for a key,
// sorted by attribute ID.
func (tc *CollectionCatalog) ColumnsByKey(key string) []*ColumnInfo {
	tc.mu.RLock()
	defer tc.mu.RUnlock()
	var out []*ColumnInfo
	for _, c := range tc.columns {
		if c.Key == key {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].AttrID < out[j].AttrID })
	return out
}

// Columns returns every column record sorted by attribute ID.
func (tc *CollectionCatalog) Columns() []*ColumnInfo {
	tc.mu.RLock()
	defer tc.mu.RUnlock()
	out := make([]*ColumnInfo, 0, len(tc.columns))
	for _, c := range tc.columns {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].AttrID < out[j].AttrID })
	return out
}

// matState snapshots a column's materialization fields under the catalog
// lock. Query planning runs concurrently with the materializer, which
// flips these fields while holding tc.mu; readers holding a shared
// *ColumnInfo must go through here rather than touch the fields directly.
func (tc *CollectionCatalog) matState(col *ColumnInfo) (phys string, materialized, dirty bool) {
	tc.mu.RLock()
	defer tc.mu.RUnlock()
	return col.PhysicalName, col.Materialized, col.Dirty
}

// DirtyColumns returns columns with the dirty bit set (the materializer's
// poll, §3.1.4).
func (tc *CollectionCatalog) DirtyColumns() []*ColumnInfo {
	tc.mu.RLock()
	defer tc.mu.RUnlock()
	var out []*ColumnInfo
	for _, c := range tc.columns {
		if c.Dirty {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].AttrID < out[j].AttrID })
	return out
}

// recordObservation updates counts for one attribute occurrence during
// load; it creates the column record on first sight (the invisible cost of
// schema evolution, §3.2.1).
func (tc *CollectionCatalog) recordObservation(attr serial.Attr, valueKey string) *ColumnInfo {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	col, ok := tc.columns[attr.ID]
	if !ok {
		col = &ColumnInfo{AttrID: attr.ID, Key: attr.Key, Type: attr.Type}
		tc.columns[attr.ID] = col
	}
	col.observe(valueKey)
	return col
}

// ensureColumn creates a catalog record for an attribute without counting
// an occurrence (used when an UPDATE introduces a brand-new key — the
// exact density is unknown until the next load or analyzer pass).
func (tc *CollectionCatalog) ensureColumn(attr serial.Attr) *ColumnInfo {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	col, ok := tc.columns[attr.ID]
	if !ok {
		col = &ColumnInfo{AttrID: attr.ID, Key: attr.Key, Type: attr.Type}
		tc.columns[attr.ID] = col
	}
	return col
}

// addDocs bumps the document count after a batch load.
func (tc *CollectionCatalog) addDocs(n int64) {
	tc.mu.Lock()
	tc.docCount += n
	tc.mu.Unlock()
}

// setDirty flags a column (under the table catalog lock).
func (tc *CollectionCatalog) setDirty(attrID uint32, dirty bool) {
	tc.mu.Lock()
	if c, ok := tc.columns[attrID]; ok {
		c.Dirty = dirty
	}
	tc.mu.Unlock()
}

// Latch locks out concurrent loader/materializer activity on this
// collection; callers must Unlatch.
func (tc *CollectionCatalog) Latch() { tc.latch.Lock() }

// TryLatch acquires the latch without blocking.
func (tc *CollectionCatalog) TryLatch() bool { return tc.latch.TryLock() }

// Unlatch releases the loader/materializer latch.
func (tc *CollectionCatalog) Unlatch() { tc.latch.Unlock() }

// String summarizes the catalog (debugging, sinewcli \d output).
func (tc *CollectionCatalog) String() string {
	tc.mu.RLock()
	defer tc.mu.RUnlock()
	return fmt.Sprintf("collection %s: %d docs, %d attributes", tc.name, tc.docCount, len(tc.columns))
}
