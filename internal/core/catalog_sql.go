package core

import (
	"strings"

	"github.com/sinewdata/sinew/internal/rdbms/storage"
	"github.com/sinewdata/sinew/internal/rdbms/types"
)

// Catalog mirror tables (Figure 4): the paper keeps the catalog inside the
// database — a global attribute dictionary plus a per-table relation. The
// in-memory catalog is authoritative for performance; SyncCatalogTables
// publishes a queryable snapshot so standard SQL (and the sinewcli user)
// can inspect it exactly as Figure 4 draws it.
const (
	// AttributeCatalogTable is the global half: (_id, key_name, key_type).
	AttributeCatalogTable = "sinew_attributes"
	// columnCatalogPrefix + collection is the per-table half:
	// (_id, count, materialized, dirty).
	columnCatalogPrefix = "sinew_columns_"
)

// ColumnCatalogTable names the per-collection catalog mirror.
func ColumnCatalogTable(collection string) string {
	return columnCatalogPrefix + strings.ToLower(collection)
}

// SyncCatalogTables (re)builds the catalog mirror tables from the
// in-memory catalog.
func (db *DB) SyncCatalogTables() error {
	// Global dictionary (Figure 4a).
	if err := db.rdb.CreateTable(AttributeCatalogTable, []storage.Column{
		{Name: "_id", Typ: types.Int, NotNull: true},
		{Name: "key_name", Typ: types.Text, NotNull: true},
		{Name: "key_type", Typ: types.Text, NotNull: true},
	}, true); err != nil {
		return err
	}
	if _, err := db.rdb.Exec("TRUNCATE " + AttributeCatalogTable); err != nil {
		return err
	}
	attrs := db.dict().All()
	rows := make([]storage.Row, len(attrs))
	for i, a := range attrs {
		rows[i] = storage.Row{
			types.NewInt(int64(a.ID)),
			types.NewText(a.Key),
			types.NewText(a.Type.String()),
		}
	}
	if err := db.rdb.InsertRows(AttributeCatalogTable, rows); err != nil {
		return err
	}

	// Per-collection half (Figure 4b).
	for _, coll := range db.cat.Collections() {
		tc, _ := db.cat.Lookup(coll)
		table := ColumnCatalogTable(coll)
		if err := db.rdb.CreateTable(table, []storage.Column{
			{Name: "_id", Typ: types.Int, NotNull: true},
			{Name: "count", Typ: types.Int, NotNull: true},
			{Name: "materialized", Typ: types.Bool, NotNull: true},
			{Name: "dirty", Typ: types.Bool, NotNull: true},
		}, true); err != nil {
			return err
		}
		if _, err := db.rdb.Exec("TRUNCATE " + table); err != nil {
			return err
		}
		cols := tc.Columns()
		rows := make([]storage.Row, len(cols))
		for i, c := range cols {
			rows[i] = storage.Row{
				types.NewInt(int64(c.AttrID)),
				types.NewInt(c.Count),
				types.NewBool(c.Materialized),
				types.NewBool(c.Dirty),
			}
		}
		if err := db.rdb.InsertRows(table, rows); err != nil {
			return err
		}
	}
	return nil
}
