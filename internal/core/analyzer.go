package core

import (
	"fmt"
	"strings"
)

// AnalyzeDecision records one schema-analyzer outcome for observability.
type AnalyzeDecision struct {
	Key          string
	Type         string
	Density      float64
	Cardinality  int64
	Materialize  bool // target state after the decision
	Changed      bool // whether the decision flipped the column's state
	PhysicalName string
}

// AnalyzeSchema runs the schema analyzer (§3.1.3) over one collection: it
// evaluates every cataloged column against the density and cardinality
// thresholds and flips target storage modes, marking flipped columns dirty
// for the materializer. Columns whose characteristics drop back below
// threshold are marked for dematerialization.
//
// It returns the per-column decisions (changed ones first).
func (db *DB) AnalyzeSchema(collection string) ([]AnalyzeDecision, error) {
	collection = strings.ToLower(collection)
	tc, ok := db.cat.Lookup(collection)
	if !ok {
		return nil, fmt.Errorf("core: collection %q does not exist", collection)
	}
	docCount := tc.DocCount()
	if docCount == 0 {
		return nil, nil
	}
	var decisions []AnalyzeDecision
	for _, col := range tc.Columns() {
		density := float64(col.Count) / float64(docCount)
		card := col.Cardinality()
		want := density >= db.cfg.DensityThreshold && card > db.cfg.CardinalityThreshold
		d := AnalyzeDecision{
			Key: col.Key, Type: col.Type.String(),
			Density: density, Cardinality: card, Materialize: want,
		}
		tc.mu.Lock()
		if want != col.Materialized {
			col.Materialized = want
			col.Dirty = true
			d.Changed = true
		}
		d.PhysicalName = col.PhysicalName
		tc.mu.Unlock()
		decisions = append(decisions, d)
	}
	// Changed first, then by key, for readable reports.
	for i := 0; i < len(decisions); i++ {
		for j := i + 1; j < len(decisions); j++ {
			a, b := decisions[i], decisions[j]
			if (b.Changed && !a.Changed) || (a.Changed == b.Changed && b.Key < a.Key) {
				decisions[i], decisions[j] = b, a
			}
		}
	}
	for _, d := range decisions {
		if d.Changed {
			// Flipped storage targets change the rewriter's output (COALESCE
			// over dirty columns); cached plans are stale.
			db.rdb.BumpCatalogEpoch()
			break
		}
	}
	return decisions, nil
}

// SetMaterialized overrides the analyzer for one key, setting its target
// storage mode explicitly and marking it dirty when the mode flips.
// Benchmarks and the ablation studies use it to pin the paper's exact
// materialization set; typo-free operation requires the key to exist.
func (db *DB) SetMaterialized(collection, key string, want bool) error {
	tc, ok := db.cat.Lookup(strings.ToLower(collection))
	if !ok {
		return fmt.Errorf("core: collection %q does not exist", collection)
	}
	cols := tc.ColumnsByKey(key)
	if len(cols) == 0 {
		return fmt.Errorf("core: key %q has never been observed in %q", key, collection)
	}
	flipped := false
	for _, col := range cols {
		tc.mu.Lock()
		if col.Materialized != want {
			col.Materialized = want
			col.Dirty = true
			flipped = true
		}
		tc.mu.Unlock()
	}
	if flipped {
		db.rdb.BumpCatalogEpoch()
	}
	return nil
}

// MaterializedColumns lists the physical (non-reservoir) logical columns of
// a collection in catalog order.
func (db *DB) MaterializedColumns(collection string) []*ColumnInfo {
	tc, ok := db.cat.Lookup(strings.ToLower(collection))
	if !ok {
		return nil
	}
	var out []*ColumnInfo
	for _, c := range tc.Columns() {
		phys, materialized, _ := tc.matState(c)
		if materialized || phys != "" {
			out = append(out, c)
		}
	}
	return out
}
