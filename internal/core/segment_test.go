package core

import (
	"math/rand"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// segmentDB loads enough random documents that ANALYZE freezes several
// full pages into column-striped segments (rowsPerPage = 128, so 400
// documents give three freezable pages plus a row-form tail).
func segmentDB(t *testing.T) (*DB, int) {
	t.Helper()
	// The planner caps workers at GOMAXPROCS; raise it so the parallel
	// legs genuinely parallelize even on single-CPU runners.
	old := runtime.GOMAXPROCS(4)
	t.Cleanup(func() { runtime.GOMAXPROCS(old) })
	db := Open(DefaultConfig())
	if err := db.CreateCollection("d"); err != nil {
		t.Fatal(err)
	}
	docs := randomDocs(rand.New(rand.NewSource(7)), 400)
	if _, err := db.LoadDocuments("d", docs); err != nil {
		t.Fatal(err)
	}
	if err := db.RDBMS().Analyze("d"); err != nil {
		t.Fatal(err)
	}
	heap, _, err := db.RDBMS().Table("d")
	if err != nil {
		t.Fatal(err)
	}
	frozen := heap.NumFrozenPages()
	if frozen == 0 {
		t.Fatal("ANALYZE froze no pages; striped path untested")
	}
	return db, frozen
}

func frozenPages(t *testing.T, db *DB) int {
	t.Helper()
	heap, _, err := db.RDBMS().Table("d")
	if err != nil {
		t.Fatal(err)
	}
	return heap.NumFrozenPages()
}

func mustSet(t *testing.T, db *DB, stmts ...string) {
	t.Helper()
	for _, s := range stmts {
		if _, err := db.RDBMS().Exec(s); err != nil {
			t.Fatalf("%s: %v", s, err)
		}
	}
}

// sortedResultKey flattens a result to an order-insensitive comparable
// string: the parallel leg's gather may interleave partitions.
func sortedResultKey(res *QueryResult) string {
	lines := strings.Split(resultKey(res), "\n")
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// segmentLegs are the executor configurations every query must agree
// across: the row-at-a-time reference, the plain batch pipeline, the
// striped segment scan, and the parallel striped scan.
var segmentLegs = []struct {
	name  string
	stmts []string
}{
	{"row", []string{
		`SET enable_batch = off`, `SET enable_striped = off`,
		`SET max_parallel_workers = 1`}},
	{"batch", []string{
		`SET enable_batch = on`, `SET enable_striped = off`,
		`SET max_parallel_workers = 1`}},
	{"striped", []string{
		`SET enable_batch = on`, `SET enable_striped = on`,
		`SET max_parallel_workers = 1`}},
	{"striped-parallel", []string{
		`SET enable_batch = on`, `SET enable_striped = on`,
		`SET max_parallel_workers = 4`, `SET parallel_scan_min_pages = 1`}},
}

// runSegmentLegs runs every query under every leg and fails on any
// divergence from the row-mode reference.
func runSegmentLegs(t *testing.T, db *DB, phase string, queries []string) {
	t.Helper()
	for _, q := range queries {
		var ref string
		for _, leg := range segmentLegs {
			mustSet(t, db, leg.stmts...)
			res, err := db.Query(q)
			if err != nil {
				t.Fatalf("%s/%s: %s: %v", phase, leg.name, q, err)
			}
			key := sortedResultKey(res)
			if leg.name == "row" {
				ref = key
				continue
			}
			if key != ref {
				t.Errorf("%s/%s: %s diverges from row mode\nrow:\n%s\n%s:\n%s",
					phase, leg.name, q, ref, leg.name, key)
			}
		}
	}
	mustSet(t, db, segmentLegs[0].stmts...) // leave in a known state
}

// TestStripedSegmentDifferential pins the tentpole's correctness
// contract: with cold pages frozen into per-attribute segments, every
// executor leg returns the same rows — including after an UPDATE
// un-freezes pages mid-table, leaving a frozen/row-form mix.
func TestStripedSegmentDifferential(t *testing.T) {
	db, frozen := segmentDB(t)
	queries := []string{
		`SELECT name FROM d`,
		`SELECT name, num, score, flag FROM d`,
		`SELECT "user.lang", name FROM d`,
		`SELECT dyn, num FROM d`,
		`SELECT name, num FROM d WHERE num >= 10`,
		`SELECT COUNT(*) FROM d WHERE score IS NOT NULL`,
		// In-scan selection: striped scans compile these predicates into
		// selection-vector kernels over the page's attribute vectors,
		// including string matches over extracted virtual keys.
		`SELECT * FROM d WHERE name = 'frosty' OR num < 5`,
		`SELECT num FROM d WHERE "user.lang" = 'en' AND num >= 0`,
		// Cardinality-changing consumers above selection-carrying batches.
		// Unique ordered groups keep the LIMIT prefix deterministic across
		// the serial and parallel legs.
		`SELECT num, COUNT(*) FROM d WHERE num >= 5 GROUP BY num ORDER BY num LIMIT 7`,
		`SELECT name, num FROM d WHERE num < 15 ORDER BY num, name LIMIT 9`,
	}
	runSegmentLegs(t, db, "frozen", queries)

	// UPDATE rows scattered across the table: the touched pages un-freeze
	// back to row form, so scans now cross a frozen/row-form mix.
	mustSet(t, db, `SET enable_batch = on`, `SET enable_striped = on`)
	if _, err := db.Query(`UPDATE d SET name = 'frosty' WHERE num = 7`); err != nil {
		t.Fatal(err)
	}
	after := frozenPages(t, db)
	if after >= frozen {
		t.Fatalf("UPDATE left frozen pages at %d (was %d); expected un-freeze", after, frozen)
	}
	runSegmentLegs(t, db, "mixed", queries)

	// Re-ANALYZE re-freezes the cooled pages and the legs still agree.
	if err := db.RDBMS().Analyze("d"); err != nil {
		t.Fatal(err)
	}
	if got := frozenPages(t, db); got <= after {
		t.Fatalf("re-ANALYZE refroze nothing: %d pages (was %d)", got, after)
	}
	runSegmentLegs(t, db, "refrozen", queries)
}

// TestStripedExplainAnnotation pins the EXPLAIN surface: scans over a
// segmented heap advertise the striped path, and SET enable_striped =
// off removes it.
func TestStripedExplainAnnotation(t *testing.T) {
	db, _ := segmentDB(t)
	text, err := db.Explain(`SELECT name, num FROM d`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "striped") {
		t.Errorf("EXPLAIN should show the striped scan:\n%s", text)
	}
	// Predicates do not disqualify striping: they compile into the
	// in-scan selection filter, and the plan advertises the sel path.
	text, err = db.Explain(`SELECT name FROM d WHERE num >= 10`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "striped") {
		t.Errorf("EXPLAIN of a filtered scan should still show striped:\n%s", text)
	}
	if !strings.Contains(text, "sel") {
		t.Errorf("EXPLAIN of a filtered striped scan should show the sel path:\n%s", text)
	}
	// A striped scan with a predicate stays striped under Gather: the
	// partition scans evaluate the shared SelFilter in-scan.
	mustSet(t, db, `SET max_parallel_workers = 4`, `SET parallel_scan_min_pages = 1`)
	text, err = db.Explain(`SELECT name FROM d WHERE num >= 10`)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"parallel", "striped", "sel"} {
		if !strings.Contains(text, want) {
			t.Errorf("parallel filtered EXPLAIN should show %q:\n%s", want, text)
		}
	}
	mustSet(t, db, `SET max_parallel_workers = 1`, `SET enable_striped = off`)
	text, err = db.Explain(`SELECT name, num FROM d`)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(text, "striped") {
		t.Errorf("enable_striped=off must disable the striped path:\n%s", text)
	}
}

// statCounter pulls one counter out of sinew_stats()'s one-line summary.
func statCounter(t *testing.T, db *DB, key string) int64 {
	t.Helper()
	res, err := db.Query(`SELECT sinew_stats()`)
	if err != nil {
		t.Fatal(err)
	}
	text := res.Rows[0][0].S
	for _, field := range strings.Fields(text) {
		if rest, ok := strings.CutPrefix(field, key+"="); ok {
			v, err := strconv.ParseInt(rest, 10, 64)
			if err != nil {
				t.Fatalf("sinew_stats %s: %v in %q", key, err, text)
			}
			return v
		}
	}
	t.Fatalf("sinew_stats output lacks %s: %q", key, text)
	return 0
}

// TestSinewStatsSegmentCounters checks the observability surface: the
// segment totals move as pages freeze, are scanned, and un-freeze.
func TestSinewStatsSegmentCounters(t *testing.T) {
	db, frozen := segmentDB(t)
	if got := statCounter(t, db, "segments_total"); got != int64(frozen) {
		t.Errorf("segments_total = %d, want %d", got, frozen)
	}

	scanned := statCounter(t, db, "segments_scanned")
	if _, err := db.Query(`SELECT name, num FROM d`); err != nil {
		t.Fatal(err)
	}
	if got := statCounter(t, db, "segments_scanned"); got <= scanned {
		t.Errorf("segments_scanned stuck at %d after a striped scan", got)
	}

	unfrozen := statCounter(t, db, "segment_pages_unfrozen")
	if _, err := db.Query(`UPDATE d SET name = 'thaw' WHERE num = 3`); err != nil {
		t.Fatal(err)
	}
	if got := statCounter(t, db, "segment_pages_unfrozen"); got <= unfrozen {
		t.Errorf("segment_pages_unfrozen stuck at %d after UPDATE", got)
	}
	if got := statCounter(t, db, "segments_total"); got >= int64(frozen) {
		t.Errorf("segments_total = %d after un-freeze, want < %d", got, frozen)
	}
}

// TestSinewStatsSelCounters checks the selection-vector observability
// surface: filtered striped scans count the sel batches they emit, and
// striped scans under a parallel gather are counted separately.
func TestSinewStatsSelCounters(t *testing.T) {
	db, _ := segmentDB(t)
	mustSet(t, db, `SET enable_batch = on`, `SET enable_striped = on`,
		`SET max_parallel_workers = 1`)
	selBefore := statCounter(t, db, "sel_vector_batches")
	if _, err := db.Query(`SELECT name, num FROM d WHERE num >= 10`); err != nil {
		t.Fatal(err)
	}
	if got := statCounter(t, db, "sel_vector_batches"); got <= selBefore {
		t.Errorf("sel_vector_batches stuck at %d after a filtered striped scan", got)
	}

	parBefore := statCounter(t, db, "parallel_striped_scans")
	mustSet(t, db, `SET max_parallel_workers = 4`, `SET parallel_scan_min_pages = 1`)
	if _, err := db.Query(`SELECT name, num FROM d WHERE num >= 10`); err != nil {
		t.Fatal(err)
	}
	if got := statCounter(t, db, "parallel_striped_scans"); got <= parBefore {
		t.Errorf("parallel_striped_scans stuck at %d after a parallel striped scan", got)
	}
}
