package core

import (
	"fmt"
	"testing"

	"github.com/sinewdata/sinew/internal/jsonx"
)

// eraDB loads a collection whose sparse keys arrive in *eras*: the first
// half of the load carries alpha_key, the second half beta_key. With 128
// rows per page, each era spans multiple whole pages, so the per-page
// attribute-ID summaries can prove "alpha_key appears nowhere on this
// page" for every beta-era page and vice versa. This is the schema-drift
// scenario attr-presence skipping targets (NoBench cannot show it — its
// generator cycles sparse keys faster than a page).
func eraDB(t *testing.T, n int) *DB {
	t.Helper()
	db := Open(DefaultConfig())
	if err := db.CreateCollection("events"); err != nil {
		t.Fatal(err)
	}
	docs := make([]*jsonx.Doc, n)
	for i := 0; i < n; i++ {
		key := "alpha_key"
		if i >= n/2 {
			key = "beta_key"
		}
		d, err := jsonx.ParseDocument([]byte(fmt.Sprintf(
			`{"id":%d,"%s":"v%d"}`, i, key, i%7)))
		if err != nil {
			t.Fatal(err)
		}
		docs[i] = d
	}
	if _, err := db.LoadDocuments("events", docs); err != nil {
		t.Fatal(err)
	}
	return db
}

func (db *DB) skipRun(t *testing.T, sql string) (rows int, skipped int64) {
	t.Helper()
	pager := db.rdb.Pager()
	pager.Reset()
	res, err := db.Query(sql)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	sk, _ := pager.ExecStats()
	return len(res.Rows), sk
}

// TestAttrPresenceSkipping pins the attr-presence half of page skipping:
// a selection on an era-local virtual key must skip the other era's
// pages outright while returning exactly the rows a skip-disabled run
// returns.
func TestAttrPresenceSkipping(t *testing.T) {
	db := eraDB(t, 1024) // 8 pages: 4 alpha-era, 4 beta-era
	const q = `SELECT id FROM events WHERE alpha_key = 'v3'`

	if _, err := db.Query("SET enable_page_skip = off"); err != nil {
		t.Fatal(err)
	}
	baseRows, baseSkipped := db.skipRun(t, q)
	if baseSkipped != 0 {
		t.Fatalf("skipped %d pages with skipping disabled", baseSkipped)
	}
	if baseRows == 0 {
		t.Fatal("probe matched no rows; fixture broken")
	}

	if _, err := db.Query("SET enable_page_skip = on"); err != nil {
		t.Fatal(err)
	}
	rows, skipped := db.skipRun(t, q)
	if rows != baseRows {
		t.Fatalf("skipping changed the result: %d rows vs %d", rows, baseRows)
	}
	// All 4 beta-era pages lack every attribute ID of alpha_key.
	if skipped < 4 {
		t.Fatalf("expected ≥4 beta-era pages skipped, got %d", skipped)
	}

	// The same holds from the other side.
	rowsB, skippedB := db.skipRun(t, `SELECT id FROM events WHERE beta_key = 'v3'`)
	if rowsB != baseRows || skippedB < 4 {
		t.Fatalf("beta probe: rows=%d (want %d) skipped=%d (want ≥4)", rowsB, baseRows, skippedB)
	}

	// A key present in every record can never prove a skip.
	rowsID, skippedID := db.skipRun(t, `SELECT alpha_key FROM events WHERE id = 7`)
	if rowsID != 1 || skippedID != 0 {
		t.Fatalf("dense-key probe: rows=%d (want 1) skipped=%d (want 0)", rowsID, skippedID)
	}
}

// TestAttrSkipSurvivesDictionaryGrowth pins the contract that page
// skipping stays correct across dictionary growth: after a skip-bearing
// plan has run (and been cached), a later load adds fresh pages carrying
// the probed key plus a brand-new attribute. The re-run must see every
// new row — attribute IDs are resolved per iterator open, never baked
// into the plan.
func TestAttrSkipSurvivesDictionaryGrowth(t *testing.T) {
	db := eraDB(t, 1024)
	if _, err := db.Query("SET enable_page_skip = on"); err != nil {
		t.Fatal(err)
	}
	const q = `SELECT id FROM events WHERE beta_key IS NOT NULL`
	rows0, _ := db.skipRun(t, q) // plan now cached, alpha pages skipped

	// A new era: beta_key returns on fresh pages, and gamma_key grows the
	// dictionary past what the cached plan saw.
	docs := make([]*jsonx.Doc, 256)
	for i := range docs {
		d, err := jsonx.ParseDocument([]byte(fmt.Sprintf(
			`{"id":%d,"beta_key":"w%d","gamma_key":%d}`, 2000+i, i, i)))
		if err != nil {
			t.Fatal(err)
		}
		docs[i] = d
	}
	if _, err := db.LoadDocuments("events", docs); err != nil {
		t.Fatal(err)
	}

	rows1, _ := db.skipRun(t, q)
	if rows1 != rows0+256 {
		t.Fatalf("after growth: %d rows, want %d", rows1, rows0+256)
	}
}

// zoneDB loads documents whose zv attribute increases monotonically, so
// every frozen page's segment zone map covers a tight, disjoint [min,max]
// window. ANALYZE (the storage-layer call, not the schema analyzer)
// freezes the full pages without materializing any key, so the predicate
// stays on the virtual-key extraction path the zone maps serve.
func zoneDB(t *testing.T, n int) *DB {
	t.Helper()
	db := Open(DefaultConfig())
	if err := db.CreateCollection("events"); err != nil {
		t.Fatal(err)
	}
	docs := make([]*jsonx.Doc, n)
	for i := 0; i < n; i++ {
		d, err := jsonx.ParseDocument([]byte(fmt.Sprintf(
			`{"id":%d,"zv":%d}`, i, i)))
		if err != nil {
			t.Fatal(err)
		}
		docs[i] = d
	}
	if _, err := db.LoadDocuments("events", docs); err != nil {
		t.Fatal(err)
	}
	if err := db.RDBMS().Analyze("events"); err != nil {
		t.Fatal(err)
	}
	return db
}

// TestStripedZoneMapSkipping pins the zone-map half of page skipping: a
// range probe on a virtual key present in every record (so attr-presence
// skipping can never fire) must eliminate every frozen page whose segment
// extrema exclude the range, while returning exactly the rows a
// skip-disabled run returns.
func TestStripedZoneMapSkipping(t *testing.T) {
	db := zoneDB(t, 1024) // 8 full pages, zv spans [128p, 128p+127] on page p
	const q = `SELECT id FROM events WHERE zv > 1000`

	mustSet(t, db, `SET enable_page_skip = off`)
	baseRows, baseSkipped := db.skipRun(t, q)
	if baseSkipped != 0 {
		t.Fatalf("skipped %d pages with skipping disabled", baseSkipped)
	}
	if baseRows != 23 { // zv in 1001..1023
		t.Fatalf("probe matched %d rows, want 23", baseRows)
	}

	mustSet(t, db, `SET enable_page_skip = on`)
	rows, skipped := db.skipRun(t, q)
	if rows != baseRows {
		t.Fatalf("zone skipping changed the result: %d rows vs %d", rows, baseRows)
	}
	// Pages 0..6 top out at zv=895; only the last page can hold zv > 1000.
	if skipped < 7 {
		t.Fatalf("skipped %d pages, want ≥7 via zone maps", skipped)
	}
	if got := statCounter(t, db, "segments_skipped_zonemap"); got < 7 {
		t.Errorf("segments_skipped_zonemap = %d, want ≥7", got)
	}

	// A probe outside every page's range proves the whole table away.
	rows0, skipped0 := db.skipRun(t, `SELECT id FROM events WHERE zv = 5000`)
	if rows0 != 0 || skipped0 < 8 {
		t.Fatalf("out-of-range probe: rows=%d (want 0) skipped=%d (want ≥8)", rows0, skipped0)
	}

	// Equality inside a single page's window keeps exactly that page.
	rowsEq, skippedEq := db.skipRun(t, `SELECT id FROM events WHERE zv = 300`)
	if rowsEq != 1 || skippedEq < 7 {
		t.Fatalf("in-range probe: rows=%d (want 1) skipped=%d (want ≥7)", rowsEq, skippedEq)
	}

	// An UPDATE un-freezes its page: the segment (and its zones) are gone,
	// so that page is scanned again while the others still skip, and the
	// result stays exact.
	if _, err := db.Query(`UPDATE events SET zv = 2000 WHERE id = 300`); err != nil {
		t.Fatal(err)
	}
	rows1, skipped1 := db.skipRun(t, q)
	if rows1 != baseRows+1 {
		t.Fatalf("after update: %d rows, want %d", rows1, baseRows+1)
	}
	if skipped1 >= skipped {
		t.Fatalf("update did not drop a zone skip (skipped %d → %d)", skipped, skipped1)
	}

	// Re-ANALYZE refreezes the page and rebuilds its zones; the updated
	// row's new value widens that page's range, so it is scanned — the
	// other six low pages skip again.
	if err := db.RDBMS().Analyze("events"); err != nil {
		t.Fatal(err)
	}
	rows2, skipped2 := db.skipRun(t, q)
	if rows2 != baseRows+1 || skipped2 < 6 {
		t.Fatalf("after analyze: rows=%d skipped=%d, want rows=%d skipped≥6",
			rows2, skipped2, baseRows+1)
	}
}

// TestSkipInvalidationOnUpdate pins conservative invalidation: an
// in-place UPDATE nulls the touched pages' summaries (they may now be
// stale), selections stay correct, and ANALYZE rebuilds the summaries so
// skipping resumes.
func TestSkipInvalidationOnUpdate(t *testing.T) {
	db := eraDB(t, 1024)
	if _, err := db.Query("SET enable_page_skip = on"); err != nil {
		t.Fatal(err)
	}
	const q = `SELECT id FROM events WHERE alpha_key = 'v3'`
	rows0, skipped0 := db.skipRun(t, q)
	if skipped0 < 4 {
		t.Fatalf("precondition: expected ≥4 pages skipped, got %d", skipped0)
	}

	// An update that does NOT affect the probe still invalidates its
	// page's summary — the page must be scanned until ANALYZE proves it
	// clean again.
	if _, err := db.Query(`UPDATE events SET other_key = 'x' WHERE id = 900`); err != nil {
		t.Fatal(err)
	}
	rows1, skipped1 := db.skipRun(t, q)
	if rows1 != rows0 {
		t.Fatalf("unrelated update changed the result: %d rows, want %d", rows1, rows0)
	}
	if skipped1 >= skipped0 {
		t.Fatalf("update did not invalidate any summary (skipped %d → %d)", skipped0, skipped1)
	}

	// ANALYZE rebuilds the summary; the page still lacks alpha_key, so the
	// original skip count returns.
	if err := db.rdb.Analyze("events"); err != nil {
		t.Fatal(err)
	}
	rows2, skipped2 := db.skipRun(t, q)
	if rows2 != rows0 || skipped2 != skipped0 {
		t.Fatalf("after analyze: rows=%d skipped=%d, want rows=%d skipped=%d",
			rows2, skipped2, rows0, skipped0)
	}

	// Now an update that DOES affect the probe: the row must be found
	// immediately, and after ANALYZE its page is permanently unskippable
	// (it genuinely carries alpha_key now) while the others skip again.
	if _, err := db.Query(`UPDATE events SET alpha_key = 'v3' WHERE id = 901`); err != nil {
		t.Fatal(err)
	}
	rows3, _ := db.skipRun(t, q)
	if rows3 != rows0+1 {
		t.Fatalf("after alpha update: %d rows, want %d", rows3, rows0+1)
	}
	if err := db.rdb.Analyze("events"); err != nil {
		t.Fatal(err)
	}
	rows4, skipped4 := db.skipRun(t, q)
	if rows4 != rows0+1 || skipped4 != skipped0-1 {
		t.Fatalf("after analyze: rows=%d skipped=%d, want rows=%d skipped=%d",
			rows4, skipped4, rows0+1, skipped0-1)
	}
}
