package core

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// fusionDB loads a collection exercising every extraction shape the fused
// multi-key kernel must reproduce bit-for-bit: dense typed keys, dotted
// nested paths, sparse keys, and a multi-typed key (extract_any).
func fusionDB(t *testing.T) *DB {
	t.Helper()
	db := Open(DefaultConfig())
	if err := db.CreateCollection("fuse_t"); err != nil {
		t.Fatal(err)
	}
	lines := make([]string, 0, 40)
	for i := 0; i < 40; i++ {
		mixed := fmt.Sprintf(`"s%d"`, i)
		if i%3 == 0 {
			mixed = fmt.Sprintf(`%d`, i*7)
		}
		sparse := ""
		if i%4 == 0 {
			sparse = fmt.Sprintf(`,"sparse_a":"only%d"`, i)
		}
		if i%5 == 0 {
			sparse += fmt.Sprintf(`,"sparse_b":%d`, i*3)
		}
		lines = append(lines, fmt.Sprintf(
			`{"str1":"x%d","num":%d,"f":%d.5,"flag":%t,"nested":{"a":"v%d","b":%d},"mixed":%s%s}`,
			i, i, i, i%2 == 0, i, i*2, mixed, sparse))
	}
	if _, err := db.LoadDocuments("fuse_t", mustDocs(t, lines...)); err != nil {
		t.Fatal(err)
	}
	return db
}

// resultKey flattens a result to a comparable string (order-preserving).
func resultKey(res *QueryResult) string {
	var sb strings.Builder
	for _, row := range res.Rows {
		for _, d := range row {
			if d.IsNull() {
				sb.WriteString("∅|")
			} else {
				fmt.Fprintf(&sb, "%v|", d)
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// TestFusedExtractMatchesRowMode pins the tentpole's correctness contract:
// for every query shape, the fused batch path (enable_batch=on) and the
// unfused row-at-a-time path return identical results.
func TestFusedExtractMatchesRowMode(t *testing.T) {
	db := fusionDB(t)
	queries := []string{
		`SELECT str1, num FROM fuse_t`,
		`SELECT str1, num, f, flag FROM fuse_t`,
		`SELECT "nested.a", "nested.b" FROM fuse_t`,
		`SELECT sparse_a, sparse_b FROM fuse_t`,
		`SELECT mixed, str1 FROM fuse_t`,
		`SELECT str1, num FROM fuse_t WHERE num >= 10`,
		`SELECT str1, num FROM fuse_t ORDER BY num DESC LIMIT 7`,
		`SELECT "nested.a", sparse_a, num FROM fuse_t WHERE flag = true`,
	}
	for _, q := range queries {
		batched, err := db.Query(q)
		if err != nil {
			t.Fatalf("%s (batch): %v", q, err)
		}
		if _, err := db.RDBMS().Exec(`SET enable_batch = off`); err != nil {
			t.Fatal(err)
		}
		rowed, err := db.Query(q)
		if _, e2 := db.RDBMS().Exec(`SET enable_batch = on`); e2 != nil {
			t.Fatal(e2)
		}
		if err != nil {
			t.Fatalf("%s (row): %v", q, err)
		}
		if resultKey(batched) != resultKey(rowed) {
			t.Errorf("%s: fused and row-mode results diverge\nbatch:\n%srow:\n%s",
				q, resultKey(batched), resultKey(rowed))
		}
	}
}

// TestFusedExplainAnnotation pins the EXPLAIN surface: multi-key virtual
// projections show the fused operator with its key count, single-key ones
// do not.
func TestFusedExplainAnnotation(t *testing.T) {
	db := fusionDB(t)
	text, err := db.Explain(`SELECT str1, num, f FROM fuse_t`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "(fused extract: 3 keys)") {
		t.Errorf("EXPLAIN should show the fused operator:\n%s", text)
	}
	text, err = db.Explain(`SELECT str1 FROM fuse_t`)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(text, "fused extract") {
		t.Errorf("single-key query must not fuse:\n%s", text)
	}
}

// TestFusedWithDirtyColumn checks the COALESCE-for-dirty contract survives
// fusion: a partially materialized column keeps its lazy COALESCE while its
// sibling keys still fuse.
func TestFusedWithDirtyColumn(t *testing.T) {
	db := fusionDB(t)
	if err := db.SetMaterialized("fuse_t", "num", true); err != nil {
		t.Fatal(err)
	}
	mat := NewMaterializer(db)
	// Pause immediately: the pass creates the physical column but moves no
	// rows, leaving the column dirty (all values still in the reservoir).
	mat.Pause()
	if _, err := mat.RunOnce("fuse_t"); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(`SELECT str1, num, f FROM fuse_t WHERE num >= 0`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 40 {
		t.Fatalf("rows = %d, want 40", len(res.Rows))
	}
	for i, row := range res.Rows {
		if row[1].IsNull() {
			t.Fatalf("row %d: dirty column num lost its value", i)
		}
	}
	// Finish the pass; the fully materialized column becomes a plain
	// column reference and the remaining virtual keys still agree.
	mat.Resume()
	if _, err := mat.RunOnce("fuse_t"); err != nil {
		t.Fatal(err)
	}
	res2, err := db.Query(`SELECT str1, num, f FROM fuse_t WHERE num >= 0`)
	if err != nil {
		t.Fatal(err)
	}
	if resultKey(res) != resultKey(res2) {
		t.Errorf("results changed across materialization:\nbefore:\n%safter:\n%s",
			resultKey(res), resultKey(res2))
	}
}

// TestPlanCacheHitPath pins the cache mechanics: the second execution of a
// statement is a hit, and every invalidation source — SET, ANALYZE, ALTER,
// a materializer pass — forces a re-plan.
func TestPlanCacheHitPath(t *testing.T) {
	db := fusionDB(t)
	q := `SELECT str1, num FROM fuse_t WHERE num >= 0`
	run := func() {
		t.Helper()
		res, err := db.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 40 {
			t.Fatalf("rows = %d, want 40", len(res.Rows))
		}
	}
	stats := func() (hits, misses uint64) {
		s := db.RDBMS().PlanCacheStats()
		return s.Hits, s.Misses
	}

	_, m0 := stats()
	run()
	if _, m := stats(); m != m0+1 {
		t.Fatalf("first run should miss: misses %d -> %d", m0, m)
	}
	h1, m1 := stats()
	run()
	if h, m := stats(); h != h1+1 || m != m1 {
		t.Fatalf("second run should hit: hits %d -> %d, misses %d -> %d", h1, h, m1, m)
	}

	invalidators := []struct {
		name string
		do   func()
	}{
		{"SET enable_batch", func() {
			if _, err := db.RDBMS().Exec(`SET enable_batch = off`); err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { _, _ = db.RDBMS().Exec(`SET enable_batch = on`) })
		}},
		{"ANALYZE", func() {
			if _, err := db.RDBMS().Exec(`ANALYZE fuse_t`); err != nil {
				t.Fatal(err)
			}
		}},
		{"ALTER TABLE", func() {
			if _, err := db.RDBMS().Exec(`ALTER TABLE fuse_t ADD COLUMN user_added int`); err != nil {
				t.Fatal(err)
			}
		}},
		{"materializer pass", func() {
			if err := db.SetMaterialized("fuse_t", "f", true); err != nil {
				t.Fatal(err)
			}
			if _, err := NewMaterializer(db).RunOnce("fuse_t"); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, inv := range invalidators {
		run() // ensure the statement is cached under the current state
		_, mBefore := stats()
		inv.do()
		run()
		if _, m := stats(); m != mBefore+1 {
			t.Errorf("%s did not force a re-plan: misses %d -> %d", inv.name, mBefore, m)
		}
	}
}

// TestPlanCacheConcurrentMaterialize races cached-plan execution against
// materializer passes flipping a column between storage modes; run under
// -race this pins both memory safety and result stability.
func TestPlanCacheConcurrentMaterialize(t *testing.T) {
	db := fusionDB(t)
	mat := NewMaterializer(db)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			res, err := db.Query(`SELECT str1, num FROM fuse_t`)
			if err != nil {
				t.Errorf("query during materialization: %v", err)
				return
			}
			if len(res.Rows) != 40 {
				t.Errorf("rows = %d during materialization, want 40", len(res.Rows))
				return
			}
			for i, row := range res.Rows {
				if row[1].IsNull() {
					t.Errorf("row %d: num NULL mid-materialization", i)
					return
				}
			}
		}
	}()
	for pass := 0; pass < 4; pass++ {
		if err := db.SetMaterialized("fuse_t", "num", pass%2 == 0); err != nil {
			t.Fatal(err)
		}
		if _, err := mat.RunOnce("fuse_t"); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}
