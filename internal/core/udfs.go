package core

import (
	"fmt"
	"sync"

	"github.com/sinewdata/sinew/internal/jsonx"
	"github.com/sinewdata/sinew/internal/rdbms/exec"
	"github.com/sinewdata/sinew/internal/rdbms/types"
	"github.com/sinewdata/sinew/internal/serial"
)

// tojsonBufPool recycles sinew_tojson's render buffer. The UDF closure is
// shared across parallel pipeline workers, so the scratch cannot live in
// the closure; a pool keeps the per-row append-growth allocations (a ~1 KB
// document regrows its buffer several times from empty) down to one
// amortized buffer per worker.
var tojsonBufPool = sync.Pool{New: func() any { return new([]byte) }}

// Cost constants for the optimizer (abstract units per call). Extraction
// from Sinew's format is one binary search plus a memory dereference
// (Appendix B); it is far cheaper than parsing JSON text but pricier than
// reading a physical column.
const (
	extractCost = 0.05
	tojsonCost  = 1.0
	setKeyCost  = 0.5
)

// registerUDFs installs Sinew's extraction and maintenance functions in the
// underlying RDBMS — the same shape as the paper's Postgres UDF extension
// (§5). All are stats-opaque: the optimizer cannot see through them, which
// is precisely what makes virtual columns invisible to it (§3.1.1).
func (db *DB) registerUDFs() {
	type extractDef struct {
		name string
		want serial.AttrType
		ret  types.Type
	}
	for _, d := range []extractDef{
		{"sinew_extract_text", serial.TypeString, types.Text},
		{"sinew_extract_int", serial.TypeInt, types.Int},
		{"sinew_extract_real", serial.TypeFloat, types.Float},
		{"sinew_extract_bool", serial.TypeBool, types.Bool},
		{"sinew_extract_array", serial.TypeArray, types.Array},
		{"sinew_extract_doc", serial.TypeObject, types.Bytes},
	} {
		d := d
		db.rdb.RegisterFunc(&exec.FuncDef{
			Name: d.name, MinArgs: 2, MaxArgs: 2,
			RetType:     func([]types.Type) types.Type { return d.ret },
			CostPerCall: extractCost,
			Opaque:      true,
			FuseFamily:  "sinew_extract",
			FuseType:    uint8(d.want),
			Eval: func(args []types.Datum) (types.Datum, error) {
				data, key, err := extractArgs(args)
				if err != nil {
					return types.Datum{}, err
				}
				if data == nil {
					return types.NewNull(d.ret), nil
				}
				v, found, err := serial.ExtractPath(data, key, d.want, db.dict())
				if err != nil {
					return types.Datum{}, err
				}
				if !found {
					// Absent key or mismatched type: NULL, never an error
					// (§3.2.2's graceful multi-type handling).
					return types.NewNull(d.ret), nil
				}
				return datumFromJSON(v, db.dict())
			},
			// Batch entry point: the serialization header of each distinct
			// reservoir value is parsed once per batch and shared across
			// every extract expression via the per-batch record cache,
			// instead of once per expression node per row.
			EvalBatch: func(ctx *exec.UDFBatchCtx, args [][]types.Datum, out []types.Datum) error {
				recs := batchRecords(ctx, args[0])
				rowArgs := make([]types.Datum, 2)
				for i := range out {
					rowArgs[0], rowArgs[1] = args[0][i], args[1][i]
					data, key, err := extractArgs(rowArgs)
					if err != nil {
						return err
					}
					if data == nil {
						out[i] = types.NewNull(d.ret)
						continue
					}
					rec, err := rowRecord(recs, i, data)
					if err != nil {
						return err
					}
					v, found, err := rec.ExtractPath(key, d.want, db.dict())
					if err != nil {
						return err
					}
					if !found {
						out[i] = types.NewNull(d.ret)
						continue
					}
					out[i], err = datumFromJSON(v, db.dict())
					if err != nil {
						return err
					}
				}
				return nil
			},
		})
	}

	// sinew_extract_any: projection with no type constraint — per §3.2.2
	// the value is returned downcast to text, probing each attribute type
	// observed for the key.
	db.rdb.RegisterFunc(&exec.FuncDef{
		Name: "sinew_extract_any", MinArgs: 2, MaxArgs: 2,
		RetType:     func([]types.Type) types.Type { return types.Text },
		CostPerCall: extractCost * 1.5,
		Opaque:      true,
		FuseFamily:  "sinew_extract",
		FuseAny:     true,
		Eval: func(args []types.Datum) (types.Datum, error) {
			data, key, err := extractArgs(args)
			if err != nil {
				return types.Datum{}, err
			}
			if data == nil {
				return types.NewNull(types.Text), nil
			}
			for _, want := range []serial.AttrType{
				serial.TypeString, serial.TypeInt, serial.TypeFloat,
				serial.TypeBool, serial.TypeArray, serial.TypeObject,
			} {
				v, found, err := serial.ExtractPath(data, key, want, db.dict())
				if err != nil {
					return types.Datum{}, err
				}
				if found {
					return types.NewText(v.String()), nil
				}
			}
			return types.NewNull(types.Text), nil
		},
		EvalBatch: func(ctx *exec.UDFBatchCtx, args [][]types.Datum, out []types.Datum) error {
			recs := batchRecords(ctx, args[0])
			rowArgs := make([]types.Datum, 2)
			for i := range out {
				rowArgs[0], rowArgs[1] = args[0][i], args[1][i]
				data, key, err := extractArgs(rowArgs)
				if err != nil {
					return err
				}
				if data == nil {
					out[i] = types.NewNull(types.Text)
					continue
				}
				rec, err := rowRecord(recs, i, data)
				if err != nil {
					return err
				}
				out[i] = types.NewNull(types.Text)
				for _, want := range []serial.AttrType{
					serial.TypeString, serial.TypeInt, serial.TypeFloat,
					serial.TypeBool, serial.TypeArray, serial.TypeObject,
				} {
					v, found, err := rec.ExtractPath(key, want, db.dict())
					if err != nil {
						return err
					}
					if found {
						out[i] = types.NewText(v.String())
						break
					}
				}
			}
			return nil
		},
	})

	// sinew_tojson reconstructs the reservoir's content as JSON text
	// (SELECT * uses it to surface remaining virtual attributes).
	db.rdb.RegisterFunc(&exec.FuncDef{
		Name: "sinew_tojson", MinArgs: 1, MaxArgs: 1,
		RetType:     func([]types.Type) types.Type { return types.Text },
		CostPerCall: tojsonCost,
		Opaque:      true,
		Eval: func(args []types.Datum) (types.Datum, error) {
			if args[0].IsNull() {
				return types.NewNull(types.Text), nil
			}
			if args[0].Typ != types.Bytes {
				return types.Datum{}, fmt.Errorf("sinew_tojson: want bytea, got %v", args[0].Typ)
			}
			// Streaming render first: one pass over the record, one text
			// allocation. Declined records (duplicate keys, corruption)
			// take the document path, which owns the canonical error.
			scratch := tojsonBufPool.Get().(*[]byte)
			buf, err := serial.AppendJSON((*scratch)[:0], args[0].Bs, db.dict())
			if err == nil {
				out := types.NewText(string(buf))
				*scratch = buf
				tojsonBufPool.Put(scratch)
				return out, nil
			}
			*scratch = buf
			tojsonBufPool.Put(scratch)
			doc, err := serial.Deserialize(args[0].Bs, db.dict())
			if err != nil {
				return types.Datum{}, err
			}
			return types.NewText(jsonx.ObjectValue(doc).String()), nil
		},
	})

	// sinew_set_key(data, key, value) writes a key into the reservoir
	// (UPDATEs on virtual columns); the value's SQL type picks the
	// attribute type.
	db.rdb.RegisterFunc(&exec.FuncDef{
		Name: "sinew_set_key", MinArgs: 3, MaxArgs: 3,
		RetType:     func([]types.Type) types.Type { return types.Bytes },
		CostPerCall: setKeyCost,
		Opaque:      true,
		Eval: func(args []types.Datum) (types.Datum, error) {
			data, key, err := extractArgs(args)
			if err != nil {
				return types.Datum{}, err
			}
			val := args[2]
			doc := jsonx.NewDoc()
			if data != nil {
				d, err := serial.Deserialize(data, db.dict())
				if err != nil {
					return types.Datum{}, err
				}
				doc = d
			}
			jv, err := jsonFromDatum(val, db.dict())
			if err != nil {
				return types.Datum{}, err
			}
			if val.IsNull() {
				// Setting NULL removes the key (absence is NULL).
				doc.Delete(key)
			} else {
				// Replace any differently-typed attribute of the same key.
				doc.Delete(key)
				doc.Set(key, jv)
			}
			out, err := serial.Serialize(doc, db.dict())
			if err != nil {
				return types.Datum{}, err
			}
			return types.NewBytes(out), nil
		},
	})

	// sinew_remove_key(data, key) strips every attribute of the key from
	// the reservoir (the UPDATE path for dirty physical columns).
	db.rdb.RegisterFunc(&exec.FuncDef{
		Name: "sinew_remove_key", MinArgs: 2, MaxArgs: 2,
		RetType:     func([]types.Type) types.Type { return types.Bytes },
		CostPerCall: setKeyCost,
		Opaque:      true,
		Eval: func(args []types.Datum) (types.Datum, error) {
			data, key, err := extractArgs(args)
			if err != nil {
				return types.Datum{}, err
			}
			if data == nil {
				return types.NewNull(types.Bytes), nil
			}
			out := data
			for _, attr := range db.dict().IDsOfKey(key) {
				next, _, err := serial.Remove(out, attr.ID)
				if err != nil {
					return types.Datum{}, err
				}
				out = next
			}
			return types.NewBytes(out), nil
		},
	})

	// sinew_match_set(_id, handle) probes a cached text-index result set
	// (§4.3: the index search result applied as a filter).
	db.rdb.RegisterFunc(&exec.FuncDef{
		Name: "sinew_match_set", MinArgs: 2, MaxArgs: 2,
		RetType:     func([]types.Type) types.Type { return types.Bool },
		CostPerCall: 0.01,
		Opaque:      true,
		Eval: func(args []types.Datum) (types.Datum, error) {
			if args[0].IsNull() || args[1].IsNull() {
				return types.NewBool(false), nil
			}
			set, ok := db.lookupMatchSet(args[1].I)
			if !ok {
				return types.Datum{}, fmt.Errorf("sinew_match_set: unknown result set %d", args[1].I)
			}
			_, hit := set[args[0].I]
			return types.NewBool(hit), nil
		},
	})

	// sinew_stats() reports runtime counters — the prepared-plan cache plus
	// the executor's page-skip and parallel-worker totals since the last
	// pager reset — as a one-line text summary.
	db.rdb.RegisterFunc(&exec.FuncDef{
		Name: "sinew_stats", MinArgs: 0, MaxArgs: 0,
		RetType:     func([]types.Type) types.Type { return types.Text },
		CostPerCall: 0.01,
		Opaque:      true,
		// Reads global mutable counters: evaluating it from concurrent
		// pipeline workers would interleave with the counters it reports.
		Volatile: true,
		Eval: func([]types.Datum) (types.Datum, error) {
			s := db.rdb.PlanCacheStats()
			skipped, workers := db.rdb.Pager().ExecStats()
			segScanned, segUnfrozen := db.rdb.Pager().SegStats()
			zoneSkipped, selBatches, parStriped := db.rdb.Pager().SelStats()
			sortBatches, topnShort, mergeParts := db.rdb.Pager().SortStats()
			snapOpen, snapEpoch, pagesCoW := db.rdb.SnapshotStats()
			return types.NewText(fmt.Sprintf(
				"plan_cache hits=%d misses=%d entries=%d invalidations=%d epoch=%d exec pages_skipped=%d parallel_workers=%d segments_total=%d segments_scanned=%d segment_pages_unfrozen=%d segments_skipped_zonemap=%d sel_vector_batches=%d parallel_striped_scans=%d sort_batches=%d topn_short_circuits=%d sorted_merge_partitions=%d snapshots_open=%d snapshot_epoch=%d pages_cow=%d sessions_active=%d",
				s.Hits, s.Misses, s.Entries, s.Invalidations, s.Epoch, skipped, workers,
				db.rdb.FrozenPages(), segScanned, segUnfrozen,
				zoneSkipped, selBatches, parStriped,
				sortBatches, topnShort, mergeParts,
				snapOpen, snapEpoch, pagesCoW, db.rdb.SessionsActive())), nil
		},
	})

	// The fused multi-key extraction kernel (§4.1's per-record binary search
	// amortized across keys): the planner collapses co-occurring
	// sinew_extract_* calls over one reservoir column into a single batch
	// operator; the kernel parses each record header once and resolves every
	// (key, type) request in one sorted merge, with dictionary IDs resolved
	// once per query instead of once per row per key.
	db.rdb.RegisterMultiExtract("sinew_extract",
		func(reqs []exec.MultiExtractReq) (exec.MultiExtractKernel, error) {
			specs := make([]serial.MultiSpec, len(reqs))
			rets := make([]types.Type, len(reqs))
			for i, r := range reqs {
				specs[i] = serial.MultiSpec{Path: r.Key, Want: serial.AttrType(r.Type), Any: r.Any}
				rets[i] = r.Ret
			}
			dict := db.dict()
			// PrepareMulti resolves dictionary IDs at plan-open time; the
			// scratch Record and value buffers are reused across every row
			// this kernel instance sees (one instance per Open, so no
			// cross-goroutine sharing).
			pm := serial.PrepareMulti(specs, dict)
			var rec serial.Record
			vals := make([]jsonx.Value, len(reqs))
			found := make([]bool, len(reqs))
			return func(data []types.Datum, out [][]types.Datum) error {
				for i := range data {
					d := data[i]
					if d.IsNull() {
						for k := range out {
							out[k][i] = types.NewNull(rets[k])
						}
						continue
					}
					if d.Typ != types.Bytes {
						return fmt.Errorf("sinew: reservoir argument must be bytea, got %v", d.Typ)
					}
					if err := rec.Reset(d.Bs); err != nil {
						return err
					}
					if err := rec.MultiExtract(pm, dict, vals, found); err != nil {
						return err
					}
					for k := range out {
						switch {
						case !found[k]:
							out[k][i] = types.NewNull(rets[k])
						case reqs[k].Any:
							out[k][i] = types.NewText(vals[k].String())
						default:
							dm, err := datumFromJSON(vals[k], dict)
							if err != nil {
								return err
							}
							out[k][i] = dm
						}
					}
				}
				return nil
			}, nil
		})

	// The striped counterpart: when a scan delivers a frozen page's
	// reservoir column as a per-attribute segment (see segment.go), the
	// fused kernel streams typed vectors instead of decoding records.
	db.rdb.RegisterStripedExtract("sinew_extract", db.stripedExtractFactory)

	// The attribute resolver backs page skipping: the planner maps an
	// extraction key to the set of dictionary attribute IDs whose joint
	// absence from a page proves the extraction NULL on every row. A dotted
	// path may be cataloged under the full path or under any prefix (nested
	// objects are stored as a single attribute holding the subtree), so the
	// union over all prefixes is the necessary-presence superset. The
	// result is always non-nil: an empty set means the key exists nowhere
	// in the dictionary, so every summarized page is skippable.
	db.rdb.Funcs().SetAttrResolver(func(key string) []uint32 {
		dict := db.dict()
		ids := []uint32{}
		add := func(k string) {
			for _, a := range dict.IDsOfKey(k) {
				ids = append(ids, a.ID)
			}
		}
		add(key)
		for i := 0; i < len(key); i++ {
			if key[i] == '.' {
				add(key[:i])
			}
		}
		return ids
	})
}

// batchRecords returns the per-batch parsed-record slots for the reservoir
// column col: one slot per row, shared by every extract expression reading
// the same column in this batch. The slice is keyed by the column's first
// element address (batch columns are aliased, not copied, between extract
// expressions) and cleared by BeginBatch. A single map lookup per batch
// replaces a per-row parse in every extract expression after the first.
func batchRecords(ctx *exec.UDFBatchCtx, col []types.Datum) []*serial.Record {
	if len(col) == 0 {
		return nil
	}
	if ctx.Cache == nil {
		ctx.Cache = make(map[any]any)
	}
	key := &col[0]
	if v, ok := ctx.Cache[key].([]*serial.Record); ok && len(v) >= len(col) {
		return v
	}
	recs := make([]*serial.Record, len(col))
	ctx.Cache[key] = recs
	return recs
}

// rowRecord parses the record for row i, memoizing it in recs.
func rowRecord(recs []*serial.Record, i int, data []byte) (*serial.Record, error) {
	if rec := recs[i]; rec != nil {
		return rec, nil
	}
	rec, err := serial.ParseRecord(data)
	if err != nil {
		return nil, err
	}
	recs[i] = rec
	return rec, nil
}

// extractArgs validates the common (data bytea, key text, ...) prefix;
// data nil means the reservoir was NULL.
func extractArgs(args []types.Datum) ([]byte, string, error) {
	if args[1].IsNull() {
		return nil, "", fmt.Errorf("sinew: extraction key must not be NULL")
	}
	if args[1].Typ != types.Text {
		return nil, "", fmt.Errorf("sinew: extraction key must be text, got %v", args[1].Typ)
	}
	if args[0].IsNull() {
		return nil, args[1].S, nil
	}
	if args[0].Typ != types.Bytes {
		return nil, "", fmt.Errorf("sinew: reservoir argument must be bytea, got %v", args[0].Typ)
	}
	return args[0].Bs, args[1].S, nil
}
