package core

import (
	"errors"
	"fmt"
	"strings"

	"github.com/sinewdata/sinew/internal/rdbms"
	"github.com/sinewdata/sinew/internal/rdbms/plan"
	"github.com/sinewdata/sinew/internal/rdbms/sqlparse"
	"github.com/sinewdata/sinew/internal/rdbms/types"
	"github.com/sinewdata/sinew/internal/serial"
	"github.com/sinewdata/sinew/internal/textindex"
)

// errNotCacheable signals that a statement guessed to be a plain SELECT
// turned out not to be; Query falls back to the uncached path.
var errNotCacheable = errors.New("core: statement not cacheable")

// Query parses, rewrites (§3.2.2), and executes a SQL statement against
// the logical universal-relation view. Plain SELECTs are served through the
// RDBMS prepared-plan cache: a repeated statement skips parsing, virtual-
// column rewriting, and planning entirely.
func (db *DB) Query(sql string) (*rdbms.Result, error) {
	if cacheableSelect(sql) {
		res, err := db.rdb.ExecSelectCached(sql, func() (*sqlparse.SelectStmt, error) {
			stmt, err := sqlparse.Parse(sql)
			if err != nil {
				return nil, err
			}
			sel, ok := stmt.(*sqlparse.SelectStmt)
			if !ok {
				return nil, errNotCacheable
			}
			rewritten, cleanup, err := db.RewriteStmt(sel)
			if err != nil {
				return nil, err
			}
			// cacheableSelect excluded matches(), so no text-index result
			// sets were registered: cleanup is a no-op and the rewritten AST
			// may outlive this statement inside the plan cache.
			cleanup()
			return rewritten.(*sqlparse.SelectStmt), nil
		})
		if !errors.Is(err, errNotCacheable) {
			return res, err
		}
	}
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	rewritten, cleanup, err := db.RewriteStmt(stmt)
	if err != nil {
		return nil, err
	}
	defer cleanup()
	res, err := db.rdb.ExecStmt(rewritten)
	if err == nil {
		switch rewritten.(type) {
		case *sqlparse.SelectStmt, *sqlparse.ExplainStmt:
		default:
			// Writes and DDL can mint catalog attributes or change the
			// physical schema the rewriter targets; cached plans built
			// against the old mapping must not be replayed.
			db.rdb.BumpCatalogEpoch()
		}
	}
	return res, err
}

// cacheableSelect reports whether a statement is eligible for the
// prepared-plan cache: a plain SELECT with no matches() predicate (those
// bind a per-statement text-index result set released after execution).
func cacheableSelect(sql string) bool {
	s := strings.TrimSpace(sql)
	if len(s) < 6 || !strings.EqualFold(s[:6], "select") {
		return false
	}
	return !strings.Contains(strings.ToLower(sql), "matches")
}

// Explain rewrites a SELECT and returns the physical plan text.
func (db *DB) Explain(sql string) (string, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return "", err
	}
	if ex, ok := stmt.(*sqlparse.ExplainStmt); ok {
		stmt = ex.Stmt
	}
	sel, ok := stmt.(*sqlparse.SelectStmt)
	if !ok {
		return "", fmt.Errorf("core: EXPLAIN supports only SELECT")
	}
	rewritten, cleanup, err := db.RewriteStmt(sel)
	if err != nil {
		return "", err
	}
	defer cleanup()
	return db.rdb.ExplainSelect(rewritten.(*sqlparse.SelectStmt))
}

// PlanOperators rewrites and plans a SELECT, returning the physical plan's
// operator labels in pre-order (the Table 2 experiment compares these
// between virtual- and physical-column states).
func (db *DB) PlanOperators(sql string) ([]string, error) {
	ops, _, err := db.PlanShape(sql)
	return ops, err
}

// PlanShape returns both the operator labels (pre-order) and the scan
// order (the join order for multi-table queries) of the rewritten plan.
func (db *DB) PlanShape(sql string) (ops, scanOrder []string, err error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, nil, err
	}
	sel, ok := stmt.(*sqlparse.SelectStmt)
	if !ok {
		return nil, nil, fmt.Errorf("core: PlanShape supports only SELECT")
	}
	rewritten, cleanup, err := db.RewriteStmt(sel)
	if err != nil {
		return nil, nil, err
	}
	defer cleanup()
	sp, err := db.rdb.PlanSelectStmt(rewritten.(*sqlparse.SelectStmt))
	if err != nil {
		return nil, nil, err
	}
	return plan.OperatorNames(sp.Root), plan.LeafOrder(sp.Root), nil
}

// RewrittenSQL returns the rewritten statement's SQL text (tests and the
// CLI's \rewrite command).
func (db *DB) RewrittenSQL(sql string) (string, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return "", err
	}
	rewritten, cleanup, err := db.RewriteStmt(stmt)
	if err != nil {
		return "", err
	}
	defer cleanup()
	return sqlparse.Print(rewritten), nil
}

// RewriteStmt transforms a logical-schema statement into one over the
// physical schema. The returned cleanup releases any text-index result
// sets registered during rewriting and must be called after execution.
func (db *DB) RewriteStmt(stmt sqlparse.Statement) (sqlparse.Statement, func(), error) {
	rw := &rewriter{db: db}
	out, err := rw.statement(stmt)
	if err != nil {
		rw.cleanup()
		return nil, func() {}, err
	}
	return out, rw.cleanup, nil
}

// rewriter carries per-statement state.
type rewriter struct {
	db      *DB
	tables  []rwTable
	handles []int64 // registered match sets
}

// rwTable is one FROM entry's resolution info.
type rwTable struct {
	ref     sqlparse.TableRef
	eff     string
	cat     *CollectionCatalog // nil for plain (non-Sinew) tables
	columns map[string]bool    // physical schema column set
}

func (rw *rewriter) cleanup() {
	for _, h := range rw.handles {
		rw.db.releaseMatchSet(h)
	}
}

func (rw *rewriter) statement(stmt sqlparse.Statement) (sqlparse.Statement, error) {
	switch st := stmt.(type) {
	case *sqlparse.SelectStmt:
		return rw.selectStmt(st)
	case *sqlparse.UpdateStmt:
		return rw.updateStmt(st)
	case *sqlparse.DeleteStmt:
		return rw.deleteStmt(st)
	case *sqlparse.ExplainStmt:
		inner, err := rw.statement(st.Stmt)
		if err != nil {
			return nil, err
		}
		return &sqlparse.ExplainStmt{Stmt: inner}, nil
	default:
		// DDL / INSERT pass through to the physical layer untouched.
		return stmt, nil
	}
}

// bindTables records resolution info for the FROM list.
func (rw *rewriter) bindTables(from []sqlparse.TableRef) error {
	rw.tables = rw.tables[:0]
	for _, ref := range from {
		t := rwTable{ref: ref, eff: ref.EffectiveName(), columns: map[string]bool{}}
		schema, err := rw.db.rdb.TableSchema(ref.Name)
		if err != nil {
			return err
		}
		for _, c := range schema.Cols {
			t.columns[c.Name] = true
		}
		if tc, ok := rw.db.cat.Lookup(strings.ToLower(ref.Name)); ok {
			t.cat = tc
		}
		rw.tables = append(rw.tables, t)
	}
	return nil
}

func (rw *rewriter) selectStmt(st *sqlparse.SelectStmt) (*sqlparse.SelectStmt, error) {
	if err := rw.bindTables(st.From); err != nil {
		return nil, err
	}
	out := &sqlparse.SelectStmt{
		Distinct: st.Distinct,
		From:     st.From,
		Limit:    st.Limit,
	}
	// Projections (stars expand against the logical schema).
	for _, item := range st.Items {
		if item.Star {
			expanded, err := rw.expandStar(item.Table)
			if err != nil {
				return nil, err
			}
			out.Items = append(out.Items, expanded...)
			continue
		}
		e, err := rw.expr(item.Expr, hintNone)
		if err != nil {
			return nil, err
		}
		alias := item.Alias
		if alias == "" {
			// Preserve the logical name for rewritten bare columns.
			if cr, ok := item.Expr.(*sqlparse.ColumnRef); ok {
				if _, isStill := e.(*sqlparse.ColumnRef); !isStill {
					alias = cr.Name
				}
			}
		}
		out.Items = append(out.Items, sqlparse.SelectItem{Expr: e, Alias: alias})
	}
	var err error
	if st.Where != nil {
		if out.Where, err = rw.expr(st.Where, hintNone); err != nil {
			return nil, err
		}
	}
	for _, g := range st.GroupBy {
		ge, err := rw.expr(g, hintNone)
		if err != nil {
			return nil, err
		}
		out.GroupBy = append(out.GroupBy, ge)
	}
	if st.Having != nil {
		if out.Having, err = rw.expr(st.Having, hintNone); err != nil {
			return nil, err
		}
	}
	for _, o := range st.OrderBy {
		oe, err := rw.expr(o.Expr, hintNone)
		if err != nil {
			return nil, err
		}
		out.OrderBy = append(out.OrderBy, sqlparse.OrderItem{Expr: oe, Desc: o.Desc})
	}
	return out, nil
}

// expandStar renders the logical row: _id, every materialized logical
// column under its key name (COALESCEd while dirty), and the remaining
// virtual attributes reconstructed as a JSON document column.
func (rw *rewriter) expandStar(tableQual string) ([]sqlparse.SelectItem, error) {
	var out []sqlparse.SelectItem
	matched := false
	for _, t := range rw.tables {
		if tableQual != "" && t.eff != tableQual {
			continue
		}
		matched = true
		if t.cat == nil {
			out = append(out, sqlparse.SelectItem{Star: true, Table: t.eff})
			continue
		}
		out = append(out, sqlparse.SelectItem{
			Expr: &sqlparse.ColumnRef{Table: t.eff, Name: IDColumn}, Alias: IDColumn,
		})
		for _, col := range t.cat.Columns() {
			phys, _, dirty := t.cat.matState(col)
			if phys == "" {
				continue
			}
			ref := sqlparse.Expr(&sqlparse.ColumnRef{Table: t.eff, Name: phys})
			if dirty {
				ref = &sqlparse.FuncCall{Name: "coalesce", Args: []sqlparse.Expr{
					ref, rw.extractCall(t.eff, col.Key, col.Type),
				}}
			}
			out = append(out, sqlparse.SelectItem{Expr: ref, Alias: col.Key})
		}
		out = append(out, sqlparse.SelectItem{
			Expr: &sqlparse.FuncCall{Name: "sinew_tojson", Args: []sqlparse.Expr{
				&sqlparse.ColumnRef{Table: t.eff, Name: ReservoirColumn},
			}},
			Alias: "document",
		})
	}
	if !matched {
		return nil, fmt.Errorf("core: relation %q in star expansion not found", tableQual)
	}
	return out, nil
}

// ---------- expression rewriting ----------

// hint is the type expectation flowing into a virtual-column reference
// from its usage context (§3.2.2: the extraction function takes a type
// argument determined by the query's semantics).
type hint int

const (
	hintNone hint = iota
	hintText
	hintInt
	hintFloat
	hintBool
	hintArray
	hintDoc
)

func hintFromAttr(t serial.AttrType) hint {
	switch t {
	case serial.TypeString:
		return hintText
	case serial.TypeInt:
		return hintInt
	case serial.TypeFloat:
		return hintFloat
	case serial.TypeBool:
		return hintBool
	case serial.TypeArray:
		return hintArray
	case serial.TypeObject:
		return hintDoc
	}
	return hintNone
}

func attrFromHint(h hint) (serial.AttrType, bool) {
	switch h {
	case hintText:
		return serial.TypeString, true
	case hintInt:
		return serial.TypeInt, true
	case hintFloat:
		return serial.TypeFloat, true
	case hintBool:
		return serial.TypeBool, true
	case hintArray:
		return serial.TypeArray, true
	case hintDoc:
		return serial.TypeObject, true
	}
	return 0, false
}

// hintOf derives the hint an expression offers to its comparison partner.
func (rw *rewriter) hintOf(e sqlparse.Expr) hint {
	switch x := e.(type) {
	case *sqlparse.Literal:
		switch x.Val.Typ {
		case types.Text:
			return hintText
		case types.Int:
			return hintInt
		case types.Float:
			return hintFloat
		case types.Bool:
			return hintBool
		case types.Array:
			return hintArray
		default:
			// Bytes and untyped literals suggest nothing to the partner.
		}
	case *sqlparse.ColumnRef:
		if _, col := rw.resolveRef(x); col != nil {
			cands := rw.candidatesFor(x)
			if len(cands) == 1 {
				return hintFromAttr(cands[0].Type)
			}
		}
	case *sqlparse.CastExpr:
		switch x.To {
		case types.Text:
			return hintText
		case types.Int:
			return hintInt
		case types.Float:
			return hintFloat
		case types.Bool:
			return hintBool
		default:
			// Casts to other targets don't constrain the partner's type.
		}
	case *sqlparse.UnaryExpr:
		if x.Op == "-" {
			return rw.hintOf(x.X)
		}
	}
	return hintNone
}

func (rw *rewriter) expr(e sqlparse.Expr, h hint) (sqlparse.Expr, error) {
	switch x := e.(type) {
	case nil:
		return nil, nil
	case *sqlparse.Literal:
		return x, nil
	case *sqlparse.ColumnRef:
		return rw.columnRef(x, h)
	case *sqlparse.BinaryExpr:
		lh, rhh := hintNone, hintNone
		switch x.Op {
		case sqlparse.OpEq, sqlparse.OpNe, sqlparse.OpLt, sqlparse.OpLe, sqlparse.OpGt, sqlparse.OpGe:
			lh, rhh = rw.hintOf(x.R), rw.hintOf(x.L)
		case sqlparse.OpAdd, sqlparse.OpSub, sqlparse.OpMul, sqlparse.OpDiv, sqlparse.OpMod:
			lh, rhh = numericHint(rw.hintOf(x.R)), numericHint(rw.hintOf(x.L))
		case sqlparse.OpConcat:
			lh, rhh = hintText, hintText
		}
		l, err := rw.expr(x.L, lh)
		if err != nil {
			return nil, err
		}
		r, err := rw.expr(x.R, rhh)
		if err != nil {
			return nil, err
		}
		return &sqlparse.BinaryExpr{Op: x.Op, L: l, R: r}, nil
	case *sqlparse.UnaryExpr:
		childHint := h
		if x.Op == "NOT" {
			childHint = hintBool
		} else {
			childHint = numericHint(h)
		}
		sub, err := rw.expr(x.X, childHint)
		if err != nil {
			return nil, err
		}
		return &sqlparse.UnaryExpr{Op: x.Op, X: sub}, nil
	case *sqlparse.IsNullExpr:
		sub, err := rw.expr(x.X, hintNone)
		if err != nil {
			return nil, err
		}
		return &sqlparse.IsNullExpr{X: sub, Not: x.Not}, nil
	case *sqlparse.BetweenExpr:
		bh := rw.hintOf(x.Lo)
		if bh == hintNone {
			bh = rw.hintOf(x.Hi)
		}
		sub, err := rw.expr(x.X, bh)
		if err != nil {
			return nil, err
		}
		lo, err := rw.expr(x.Lo, rw.hintOf(x.X))
		if err != nil {
			return nil, err
		}
		hi, err := rw.expr(x.Hi, rw.hintOf(x.X))
		if err != nil {
			return nil, err
		}
		return &sqlparse.BetweenExpr{X: sub, Lo: lo, Hi: hi, Not: x.Not}, nil
	case *sqlparse.InListExpr:
		var lh hint
		for _, le := range x.List {
			if lh = rw.hintOf(le); lh != hintNone {
				break
			}
		}
		sub, err := rw.expr(x.X, lh)
		if err != nil {
			return nil, err
		}
		list := make([]sqlparse.Expr, len(x.List))
		for i, le := range x.List {
			if list[i], err = rw.expr(le, rw.hintOf(x.X)); err != nil {
				return nil, err
			}
		}
		return &sqlparse.InListExpr{X: sub, List: list, Not: x.Not}, nil
	case *sqlparse.LikeExpr:
		sub, err := rw.expr(x.X, hintText)
		if err != nil {
			return nil, err
		}
		pat, err := rw.expr(x.Pattern, hintText)
		if err != nil {
			return nil, err
		}
		return &sqlparse.LikeExpr{X: sub, Pattern: pat, Not: x.Not}, nil
	case *sqlparse.AnyExpr:
		sub, err := rw.expr(x.X, hintNone)
		if err != nil {
			return nil, err
		}
		arr, err := rw.expr(x.Array, hintArray)
		if err != nil {
			return nil, err
		}
		return &sqlparse.AnyExpr{X: sub, Op: x.Op, Array: arr}, nil
	case *sqlparse.CastExpr:
		sub, err := rw.expr(x.X, hintFromType(x.To))
		if err != nil {
			return nil, err
		}
		return &sqlparse.CastExpr{X: sub, To: x.To}, nil
	case *sqlparse.FuncCall:
		if x.Name == "matches" {
			return rw.matchesCall(x)
		}
		args := make([]sqlparse.Expr, len(x.Args))
		for i, a := range x.Args {
			var err error
			if args[i], err = rw.expr(a, hintNone); err != nil {
				return nil, err
			}
		}
		return &sqlparse.FuncCall{Name: x.Name, Args: args, Star: x.Star, Distinct: x.Distinct}, nil
	default:
		return nil, fmt.Errorf("core: unsupported expression %T", e)
	}
}

func numericHint(h hint) hint {
	if h == hintInt || h == hintFloat {
		return h
	}
	return hintNone
}

func hintFromType(t types.Type) hint {
	switch t {
	case types.Text:
		return hintText
	case types.Int:
		return hintInt
	case types.Float:
		return hintFloat
	case types.Bool:
		return hintBool
	case types.Array:
		return hintArray
	default:
		return hintNone
	}
}

// resolveRef finds the FROM table a reference belongs to: a physical match
// wins; otherwise a catalog (virtual) match. The second result is the
// matching table (nil when unresolved).
func (rw *rewriter) resolveRef(cr *sqlparse.ColumnRef) (physical bool, tbl *rwTable) {
	// Qualified reference.
	if cr.Table != "" {
		for i := range rw.tables {
			t := &rw.tables[i]
			if t.eff != cr.Table {
				continue
			}
			if t.columns[cr.Name] {
				return true, t
			}
			if t.cat != nil && len(t.cat.ColumnsByKey(cr.Name)) > 0 {
				return false, t
			}
			return false, nil
		}
		return false, nil
	}
	// Unqualified: physical match first.
	var phys, virt *rwTable
	for i := range rw.tables {
		t := &rw.tables[i]
		if t.columns[cr.Name] {
			if phys != nil {
				return false, nil // ambiguous
			}
			phys = t
		}
	}
	if phys != nil {
		return true, phys
	}
	for i := range rw.tables {
		t := &rw.tables[i]
		if t.cat != nil && len(t.cat.ColumnsByKey(cr.Name)) > 0 {
			if virt != nil {
				return false, nil // ambiguous
			}
			virt = t
		}
	}
	if virt != nil {
		return false, virt
	}
	return false, nil
}

// candidatesFor lists the catalog attributes for a reference's key in its
// resolved table.
func (rw *rewriter) candidatesFor(cr *sqlparse.ColumnRef) []*ColumnInfo {
	_, t := rw.resolveRef(cr)
	if t == nil || t.cat == nil {
		return nil
	}
	return t.cat.ColumnsByKey(cr.Name)
}

// columnRef rewrites one reference per §3.2.2: physical non-dirty stays a
// column reference; dirty becomes COALESCE(column, extract); virtual
// becomes an extraction call typed from the context hint (or downcast to
// text when the key is multi-typed and the context is unconstrained).
func (rw *rewriter) columnRef(cr *sqlparse.ColumnRef, h hint) (sqlparse.Expr, error) {
	physical, t := rw.resolveRef(cr)
	if t == nil {
		return nil, fmt.Errorf("core: column %q does not exist in the logical schema", displayName(cr))
	}
	if physical && t.cat == nil {
		return &sqlparse.ColumnRef{Table: t.eff, Name: cr.Name}, nil // plain table
	}
	if physical && (cr.Name == IDColumn || cr.Name == ReservoirColumn) {
		return &sqlparse.ColumnRef{Table: t.eff, Name: cr.Name}, nil
	}

	cands := t.cat.ColumnsByKey(cr.Name)
	if len(cands) == 0 {
		// Physical column not under catalog control (user-added).
		if physical {
			return &sqlparse.ColumnRef{Table: t.eff, Name: cr.Name}, nil
		}
		return nil, fmt.Errorf("core: column %q does not exist in the logical schema", displayName(cr))
	}

	// Pick the candidate attribute guided by the hint.
	col := pickCandidate(cands, h)
	if col == nil {
		// The hinted type was never observed for this key: extraction of
		// that type correctly yields NULLs.
		if at, ok := attrFromHint(h); ok {
			return rw.extractCall(t.eff, cr.Name, at), nil
		}
		col = cands[0]
	}

	phys, materialized, dirty := t.cat.matState(col)
	if phys != "" && materialized && !dirty {
		return &sqlparse.ColumnRef{Table: t.eff, Name: phys}, nil
	}
	if phys != "" && dirty {
		// Partially materialized either way: COALESCE over both locations.
		return &sqlparse.FuncCall{Name: "coalesce", Args: []sqlparse.Expr{
			&sqlparse.ColumnRef{Table: t.eff, Name: phys},
			rw.extractCall(t.eff, cr.Name, col.Type),
		}}, nil
	}
	// Virtual.
	if h == hintNone && len(cands) > 1 {
		// Multi-typed key in an unconstrained context: text downcast.
		return &sqlparse.FuncCall{Name: "sinew_extract_any", Args: []sqlparse.Expr{
			&sqlparse.ColumnRef{Table: t.eff, Name: ReservoirColumn},
			&sqlparse.Literal{Val: types.NewText(cr.Name)},
		}}, nil
	}
	return rw.extractCall(t.eff, cr.Name, col.Type), nil
}

// pickCandidate chooses the attribute matching the hint; numeric hints
// accept the other numeric type when no exact match exists.
func pickCandidate(cands []*ColumnInfo, h hint) *ColumnInfo {
	if h == hintNone {
		if len(cands) == 1 {
			return cands[0]
		}
		return nil
	}
	want, _ := attrFromHint(h)
	for _, c := range cands {
		if c.Type == want {
			return c
		}
	}
	if h == hintInt || h == hintFloat {
		for _, c := range cands {
			if c.Type == serial.TypeInt || c.Type == serial.TypeFloat {
				return c
			}
		}
	}
	return nil
}

var extractFuncName = map[serial.AttrType]string{
	serial.TypeString: "sinew_extract_text",
	serial.TypeInt:    "sinew_extract_int",
	serial.TypeFloat:  "sinew_extract_real",
	serial.TypeBool:   "sinew_extract_bool",
	serial.TypeArray:  "sinew_extract_array",
	serial.TypeObject: "sinew_extract_doc",
}

// extractCall builds the extraction expression for a key. When a prefix of
// a dotted key is itself a materialized nested-object column, the value no
// longer lives in the reservoir: extraction is routed into that column's
// serialized sub-record (COALESCEd with the reservoir while the parent is
// dirty).
func (rw *rewriter) extractCall(tableEff, key string, t serial.AttrType) sqlparse.Expr {
	fromReservoir := rawExtract(t, &sqlparse.ColumnRef{Table: tableEff, Name: ReservoirColumn}, key)
	tc := rw.catFor(tableEff)
	if tc == nil {
		return fromReservoir
	}
	// Longest materialized parent prefix wins.
	for i := len(key) - 1; i > 0; i-- {
		if key[i] != '.' {
			continue
		}
		parent, rest := key[:i], key[i+1:]
		for _, pc := range tc.ColumnsByKey(parent) {
			phys, _, dirty := tc.matState(pc)
			if pc.Type != serial.TypeObject || phys == "" {
				continue
			}
			fromParent := rawExtract(t, &sqlparse.ColumnRef{Table: tableEff, Name: phys}, rest)
			if dirty {
				return &sqlparse.FuncCall{Name: "coalesce", Args: []sqlparse.Expr{fromParent, fromReservoir}}
			}
			return fromParent
		}
	}
	return fromReservoir
}

func rawExtract(t serial.AttrType, source sqlparse.Expr, key string) sqlparse.Expr {
	return &sqlparse.FuncCall{Name: extractFuncName[t], Args: []sqlparse.Expr{
		source, &sqlparse.Literal{Val: types.NewText(key)},
	}}
}

// catFor finds the collection catalog for an effective table name.
func (rw *rewriter) catFor(tableEff string) *CollectionCatalog {
	for i := range rw.tables {
		if rw.tables[i].eff == tableEff {
			return rw.tables[i].cat
		}
	}
	return nil
}

func displayName(cr *sqlparse.ColumnRef) string {
	if cr.Table != "" {
		return cr.Table + "." + cr.Name
	}
	return cr.Name
}

// matchesCall rewrites matches(keys, query) (§4.3): the text index is
// searched at rewrite time and the resulting row-ID set is probed per row.
func (rw *rewriter) matchesCall(x *sqlparse.FuncCall) (sqlparse.Expr, error) {
	if rw.db.index == nil {
		return nil, fmt.Errorf("core: matches() requires the text index (Config.EnableTextIndex)")
	}
	if len(x.Args) != 2 {
		return nil, fmt.Errorf("core: matches(keys, query) takes exactly two arguments")
	}
	keysLit, ok1 := x.Args[0].(*sqlparse.Literal)
	queryLit, ok2 := x.Args[1].(*sqlparse.Literal)
	if !ok1 || !ok2 || keysLit.Val.Typ != types.Text || queryLit.Val.Typ != types.Text {
		return nil, fmt.Errorf("core: matches() arguments must be string literals")
	}
	var sinewTable *rwTable
	for i := range rw.tables {
		if rw.tables[i].cat != nil {
			sinewTable = &rw.tables[i]
			break
		}
	}
	if sinewTable == nil {
		return nil, fmt.Errorf("core: matches() requires a Sinew collection in FROM")
	}
	var ids []textindex.DocID
	var err error
	ids, err = rw.db.index.Query(keysLit.Val.S, queryLit.Val.S)
	if err != nil {
		return nil, err
	}
	handle := rw.db.registerMatchSet(ids)
	rw.handles = append(rw.handles, handle)
	return &sqlparse.FuncCall{Name: "sinew_match_set", Args: []sqlparse.Expr{
		&sqlparse.ColumnRef{Table: sinewTable.eff, Name: IDColumn},
		&sqlparse.Literal{Val: types.NewInt(handle)},
	}}, nil
}

// ---------- UPDATE / DELETE ----------

func (rw *rewriter) updateStmt(st *sqlparse.UpdateStmt) (sqlparse.Statement, error) {
	if err := rw.bindTables([]sqlparse.TableRef{{Name: st.Table}}); err != nil {
		return nil, err
	}
	t := &rw.tables[0]
	if t.cat == nil {
		return st, nil // plain table: pass through
	}
	out := &sqlparse.UpdateStmt{Table: st.Table}
	// The reservoir update expression accumulates virtual-column writes.
	dataExpr := sqlparse.Expr(&sqlparse.ColumnRef{Table: t.eff, Name: ReservoirColumn})
	dataTouched := false

	for _, set := range st.Set {
		rhs, err := rw.expr(set.Value, hintNone)
		if err != nil {
			return nil, err
		}
		cands := t.cat.ColumnsByKey(set.Column)
		var col *ColumnInfo
		if len(cands) > 0 {
			col = pickCandidate(cands, rw.hintOf(set.Value))
			if col == nil {
				col = cands[0]
			}
		}
		var physName string
		var physDirty bool
		if col != nil {
			physName, _, physDirty = t.cat.matState(col)
		}
		switch {
		case col != nil && physName != "" && !physDirty:
			out.Set = append(out.Set, sqlparse.SetClause{Column: physName, Value: rhs})
		case col != nil && physName != "" && physDirty:
			// Write the physical column and purge any reservoir copy so the
			// two locations never disagree.
			out.Set = append(out.Set, sqlparse.SetClause{Column: physName, Value: rhs})
			dataExpr = &sqlparse.FuncCall{Name: "sinew_remove_key", Args: []sqlparse.Expr{
				dataExpr, &sqlparse.Literal{Val: types.NewText(set.Column)},
			}}
			dataTouched = true
		default:
			// Virtual (or brand new) key: write into the reservoir. A
			// brand-new key is cataloged immediately so it joins the
			// logical schema (§3.2.1's invisible schema evolution).
			if col == nil {
				at := serial.TypeString
				if want, ok := attrFromHint(rw.hintOf(set.Value)); ok {
					at = want
				}
				t.cat.ensureColumn(serial.Attr{
					ID: rw.db.dict().IDFor(set.Column, at), Key: set.Column, Type: at,
				})
			}
			dataExpr = &sqlparse.FuncCall{Name: "sinew_set_key", Args: []sqlparse.Expr{
				dataExpr, &sqlparse.Literal{Val: types.NewText(set.Column)}, rhs,
			}}
			dataTouched = true
		}
	}
	if dataTouched {
		out.Set = append(out.Set, sqlparse.SetClause{Column: ReservoirColumn, Value: dataExpr})
	}
	if st.Where != nil {
		w, err := rw.expr(st.Where, hintNone)
		if err != nil {
			return nil, err
		}
		out.Where = w
	}
	return out, nil
}

func (rw *rewriter) deleteStmt(st *sqlparse.DeleteStmt) (sqlparse.Statement, error) {
	if err := rw.bindTables([]sqlparse.TableRef{{Name: st.Table}}); err != nil {
		return nil, err
	}
	if rw.tables[0].cat == nil {
		return st, nil
	}
	out := &sqlparse.DeleteStmt{Table: st.Table}
	if st.Where != nil {
		w, err := rw.expr(st.Where, hintNone)
		if err != nil {
			return nil, err
		}
		out.Where = w
	}
	return out, nil
}
