package core

import (
	"context"
	"strings"
	"testing"
	"time"

	"github.com/sinewdata/sinew/internal/jsonx"
)

// rewriteOf is a helper asserting substrings of the §3.2.2 rewrite.
func rewriteOf(t *testing.T, db *DB, sql string, want ...string) string {
	t.Helper()
	out, err := db.RewrittenSQL(sql)
	if err != nil {
		t.Fatalf("rewrite %q: %v", sql, err)
	}
	for _, w := range want {
		if !strings.Contains(out, w) {
			t.Errorf("rewrite of %q missing %q:\n%s", sql, w, out)
		}
	}
	return out
}

func TestRewriteTypedExtractionByContext(t *testing.T) {
	db := Open(DefaultConfig())
	db.CreateCollection("m")
	db.LoadDocuments("m", mustDocs(t,
		`{"dyn": 1, "s": "x", "f": 1.5, "b": true, "arr": [1]}`,
		`{"dyn": "one"}`,
	))
	// Single-typed keys extract with their cataloged type regardless of
	// hints.
	rewriteOf(t, db, `SELECT s FROM m`, "sinew_extract_text")
	rewriteOf(t, db, `SELECT f FROM m`, "sinew_extract_real")
	rewriteOf(t, db, `SELECT b FROM m`, "sinew_extract_bool")
	rewriteOf(t, db, `SELECT arr FROM m`, "sinew_extract_array")
	// Multi-typed key: context picks the attribute.
	rewriteOf(t, db, `SELECT 1 FROM m WHERE dyn = 5`, "sinew_extract_int")
	rewriteOf(t, db, `SELECT 1 FROM m WHERE dyn = 'one'`, "sinew_extract_text")
	rewriteOf(t, db, `SELECT 1 FROM m WHERE dyn BETWEEN 1 AND 2`, "sinew_extract_int")
	// Unconstrained multi-typed: text downcast.
	rewriteOf(t, db, `SELECT dyn FROM m`, "sinew_extract_any")
	// Numeric hint with no exact match falls to the numeric sibling.
	rewriteOf(t, db, `SELECT 1 FROM m WHERE f > 1`, "sinew_extract_real")
}

func TestRewriteHintedTypeNeverObserved(t *testing.T) {
	db := Open(DefaultConfig())
	db.CreateCollection("m")
	db.LoadDocuments("m", mustDocs(t, `{"s": "text only"}`))
	// Comparing a text-only key against a bool yields a bool extraction
	// (all NULLs), not an error.
	res, err := db.Query(`SELECT COUNT(*) FROM m WHERE s = TRUE`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != 0 {
		t.Errorf("count = %v", res.Rows[0][0])
	}
}

func TestRewriteUpdateComposesReservoirWrites(t *testing.T) {
	db := Open(Config{DensityThreshold: 0.5, CardinalityThreshold: 0})
	db.CreateCollection("u")
	db.LoadDocuments("u", mustDocs(t, `{"a":1,"b":"x","c":2.5}`))
	db.AnalyzeSchema("u")
	NewMaterializer(db).RunOnce("u")
	// Make "a" dirty again with a new load.
	db.LoadDocuments("u", mustDocs(t, `{"a":2}`))

	stmt, err := db.RewrittenSQL(`UPDATE u SET a = 9, brand_new = 'v' WHERE c > 1`)
	if err != nil {
		t.Fatal(err)
	}
	// a is dirty physical: column write + reservoir purge; brand_new goes
	// through sinew_set_key; both reservoir ops compose into one SET.
	for _, w := range []string{"sinew_remove_key", "sinew_set_key", "data = "} {
		if !strings.Contains(stmt, w) {
			t.Errorf("update rewrite missing %q:\n%s", w, stmt)
		}
	}
	if strings.Count(stmt, "data = ") != 1 {
		t.Errorf("reservoir must be SET exactly once:\n%s", stmt)
	}
	// And it actually executes correctly.
	if _, err := db.Query(`UPDATE u SET a = 9, brand_new = 'v' WHERE c > 1`); err != nil {
		t.Fatal(err)
	}
	res, _ := db.Query(`SELECT a, brand_new FROM u WHERE c > 1`)
	if res.Rows[0][0].I != 9 || res.Rows[0][1].S != "v" {
		t.Errorf("row = %v", res.Rows[0])
	}
}

func TestRewriteMatchesReleasesHandles(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EnableTextIndex = true
	db := Open(cfg)
	db.CreateCollection("p")
	db.LoadDocuments("p", mustDocs(t, `{"id":1,"txt":"hello world"}`))
	for i := 0; i < 50; i++ {
		if _, err := db.Query(`SELECT id FROM p WHERE matches('*', 'hello')`); err != nil {
			t.Fatal(err)
		}
	}
	db.matchMu.Lock()
	leaked := len(db.matchSets)
	db.matchMu.Unlock()
	if leaked != 0 {
		t.Errorf("%d match sets leaked", leaked)
	}
}

func TestRewriteErrorsAlsoReleaseHandles(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EnableTextIndex = true
	db := Open(cfg)
	db.CreateCollection("p")
	db.LoadDocuments("p", mustDocs(t, `{"id":1,"txt":"hello"}`))
	// A rewrite that registers a match set and then fails on an unknown
	// column must still release the set.
	if _, err := db.Query(`SELECT id FROM p WHERE matches('*', 'hello') AND ghost_column = 1`); err == nil {
		t.Fatal("expected unknown-column error")
	}
	db.matchMu.Lock()
	leaked := len(db.matchSets)
	db.matchMu.Unlock()
	if leaked != 0 {
		t.Errorf("%d match sets leaked after error", leaked)
	}
}

func TestRewritePlainTablePassThrough(t *testing.T) {
	db := Open(DefaultConfig())
	// A plain SQL table created directly in the RDBMS is untouched by the
	// rewriter (the paper's "interacting transparently with structured
	// data already stored in the RDBMS").
	if _, err := db.RDBMS().Exec(`CREATE TABLE plain (v integer)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.RDBMS().Exec(`INSERT INTO plain VALUES (1), (2)`); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(`SELECT v FROM plain WHERE v > 1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].I != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	// And joins between Sinew collections and plain tables work.
	db.CreateCollection("docs")
	db.LoadDocuments("docs", mustDocs(t, `{"ref":2,"name":"two"}`))
	res, err = db.Query(`SELECT d.name FROM docs d, plain p WHERE d.ref = p.v`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].S != "two" {
		t.Fatalf("mixed join rows = %v", res.Rows)
	}
}

func TestBackgroundMaterializerLoop(t *testing.T) {
	db := Open(Config{DensityThreshold: 0.5, CardinalityThreshold: 0})
	db.CreateCollection("bg")
	var docs []*jsonx.Doc
	for i := 0; i < 100; i++ {
		d := jsonx.NewDoc()
		d.Set("v", jsonx.IntValue(int64(i)))
		docs = append(docs, d)
	}
	db.LoadDocuments("bg", docs)
	db.AnalyzeSchema("bg")

	m := NewMaterializer(db)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go m.Run(ctx, time.Millisecond)

	// Wait for the background pass to complete.
	deadline := time.After(5 * time.Second)
	for m.Passes.Load() == 0 {
		select {
		case <-deadline:
			t.Fatal("materializer never completed a pass")
		case <-time.After(time.Millisecond):
		}
	}
	sql, _ := db.RewrittenSQL(`SELECT v FROM bg`)
	if strings.Contains(sql, "sinew_extract") {
		t.Errorf("column should be physical after background pass: %s", sql)
	}
}
