package core

import (
	"fmt"
	"strings"
	"sync"

	"github.com/sinewdata/sinew/internal/rdbms"
	"github.com/sinewdata/sinew/internal/rdbms/storage"
	"github.com/sinewdata/sinew/internal/rdbms/types"
	"github.com/sinewdata/sinew/internal/serial"
	"github.com/sinewdata/sinew/internal/textindex"
)

// ReservoirColumn is the physical column holding each document's serialized
// virtual attributes (§3.1.1's "column reservoir").
const ReservoirColumn = "data"

// IDColumn is the per-document row identity column.
const IDColumn = "_id"

// Config holds Sinew's tunables.
type Config struct {
	// DensityThreshold is the minimum fraction of documents containing a
	// key for it to be materialized (§6.1 used 0.6).
	DensityThreshold float64
	// CardinalityThreshold is the minimum distinct-value count for
	// materialization (§6.1 used 200): low-cardinality columns are exactly
	// where the optimizer's fixed default estimate is least harmful.
	CardinalityThreshold int64
	// EnableTextIndex maintains the inverted index at load time (§4.3).
	EnableTextIndex bool
}

// DefaultConfig mirrors the paper's §6.1 materialization policy.
func DefaultConfig() Config {
	return Config{DensityThreshold: 0.6, CardinalityThreshold: 200}
}

// ArrayMode selects the physical strategy for array-valued keys (§4.2).
type ArrayMode int

// Array strategies.
const (
	// ArrayAsDatum stores the array as an RDBMS array value (default).
	ArrayAsDatum ArrayMode = iota
	// ArrayPositional additionally catalogs fixed positions as dot-indexed
	// attributes ("key.0", "key.1", ...) which may then be materialized as
	// their own columns.
	ArrayPositional
	// ArraySeparateTable shreds array elements into a side table
	// <collection>__<key>_elems(parent_id, idx, elem_*).
	ArraySeparateTable
)

// CollectionOptions customize one collection's load behaviour.
type CollectionOptions struct {
	// ArrayModes maps a key to its strategy; keys not listed use
	// ArrayAsDatum.
	ArrayModes map[string]ArrayMode
	// PositionalLimit caps positions cataloged under ArrayPositional.
	PositionalLimit int
	// SplitNested lists nested-object keys stored in their own
	// sub-collection instead of inline (§4.2's relaxation of the universal
	// relation: "logical groups … put in separate tables and joined
	// together at query time"). The sub-collection is named
	// <collection>__<key>, carries a parent_id key referencing the parent
	// _id, and is itself a full Sinew collection (analyzable,
	// materializable, queryable).
	SplitNested []string
}

// QueryResult is the materialized result of a Sinew query (an alias of the
// underlying RDBMS result type).
type QueryResult = rdbms.Result

// DB is a Sinew database: a universal-relation view over multi-structured
// documents stored in an unmodified RDBMS.
type DB struct {
	rdb *rdbms.DB
	cat *Catalog
	cfg Config

	index *textindex.Index

	optsMu   sync.RWMutex
	collOpts map[string]CollectionOptions

	matchMu   sync.Mutex
	matchSets map[int64]map[int64]struct{}
	nextSet   int64
}

// Open creates a Sinew database over a fresh embedded RDBMS.
func Open(cfg Config) *DB {
	db := &DB{
		rdb:       rdbms.Open(),
		cat:       NewCatalog(),
		cfg:       cfg,
		collOpts:  make(map[string]CollectionOptions),
		matchSets: make(map[int64]map[int64]struct{}),
	}
	if cfg.EnableTextIndex {
		db.index = textindex.New()
	}
	db.registerUDFs()
	return db
}

// RDBMS exposes the underlying database (EXPLAIN, plan-config tweaks, and
// the baselines' shared substrate in benchmarks).
func (db *DB) RDBMS() *rdbms.DB { return db.rdb }

// Catalog exposes Sinew's catalog.
func (db *DB) Catalog() *Catalog { return db.cat }

// Config returns the active configuration.
func (db *DB) Config() Config { return db.cfg }

// TextIndex returns the inverted index (nil unless enabled).
func (db *DB) TextIndex() *textindex.Index { return db.index }

// CreateCollection creates the backing table: (_id bigint NOT NULL,
// data bytea) — the all-virtual starting point of the hybrid schema.
func (db *DB) CreateCollection(name string, opts ...CollectionOptions) error {
	name = strings.ToLower(name)
	if err := validateCollectionName(name); err != nil {
		return err
	}
	err := db.rdb.CreateTable(name, []storage.Column{
		{Name: IDColumn, Typ: types.Int, NotNull: true},
		{Name: ReservoirColumn, Typ: types.Bytes},
	}, false)
	if err != nil {
		return err
	}
	// Maintain per-page attribute-presence summaries over the reservoir
	// column (index 1 above): sparse-key selections skip whole pages whose
	// summary proves the key absent. The segmenter lets ANALYZE (and
	// load-time compaction) freeze cold pages into column-striped segments
	// the batch pipeline reads directly.
	if heap, _, terr := db.rdb.Table(name); terr == nil {
		heap.SetAttrSummarizer(1, reservoirSummarizer)
		heap.SetColumnSegmenter(db.reservoirSegmenter())
	}
	db.cat.Collection(name)
	if len(opts) > 0 {
		db.optsMu.Lock()
		db.collOpts[name] = opts[0]
		db.optsMu.Unlock()
	}
	return nil
}

func validateCollectionName(name string) error {
	if name == "" {
		return fmt.Errorf("core: empty collection name")
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		if !(c == '_' || c >= 'a' && c <= 'z' || c >= '0' && c <= '9') {
			return fmt.Errorf("core: invalid collection name %q", name)
		}
	}
	return nil
}

func (db *DB) options(name string) CollectionOptions {
	db.optsMu.RLock()
	defer db.optsMu.RUnlock()
	return db.collOpts[name]
}

// DatabaseSizeBytes reports total storage (Table 3).
func (db *DB) DatabaseSizeBytes() int64 { return db.rdb.TotalSizeBytes() }

// physicalColumnName picks the RDBMS column name for an attribute:
// the raw key unless it collides with the fixed columns or a sibling
// attribute of another type, in which case the type name is appended.
func (db *DB) physicalColumnName(tc *CollectionCatalog, col *ColumnInfo) string {
	name := col.Key
	if name == IDColumn || name == ReservoirColumn {
		return name + "$" + col.Type.String()
	}
	for _, sibling := range tc.ColumnsByKey(col.Key) {
		if sibling.AttrID != col.AttrID && sibling.PhysicalName == name {
			return name + "$" + col.Type.String()
		}
	}
	return name
}

// registerMatchSet caches a text-index result set for the rewritten query
// to probe; it returns the set handle.
func (db *DB) registerMatchSet(ids []textindex.DocID) int64 {
	set := make(map[int64]struct{}, len(ids))
	for _, id := range ids {
		set[int64(id)] = struct{}{}
	}
	db.matchMu.Lock()
	defer db.matchMu.Unlock()
	handle := db.nextSet
	db.nextSet++
	db.matchSets[handle] = set
	return handle
}

func (db *DB) lookupMatchSet(handle int64) (map[int64]struct{}, bool) {
	db.matchMu.Lock()
	defer db.matchMu.Unlock()
	s, ok := db.matchSets[handle]
	return s, ok
}

// releaseMatchSet frees a cached result set after the statement runs.
func (db *DB) releaseMatchSet(handle int64) {
	db.matchMu.Lock()
	delete(db.matchSets, handle)
	db.matchMu.Unlock()
}

// dictTyped is a convenience for UDF closures.
func (db *DB) dict() *serial.Dictionary { return db.cat.Dict() }

// reservoirSummarizer lists the attribute IDs present in one serialized
// reservoir value (the record header's sorted ID array). A non-bytes value
// or a corrupt header invalidates the page summary rather than risking a
// wrong skip.
func reservoirSummarizer(d types.Datum) ([]uint32, bool) {
	if d.Typ != types.Bytes {
		return nil, false
	}
	ids, err := serial.AttrIDs(d.Bs)
	if err != nil {
		return nil, false
	}
	return ids, true
}
