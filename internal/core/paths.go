package core

import (
	"github.com/sinewdata/sinew/internal/jsonx"
	"github.com/sinewdata/sinew/internal/serial"
)

// pathDepth counts the dot-separated segments of a key.
func pathDepth(key string) int {
	n := 1
	for i := 0; i < len(key); i++ {
		if key[i] == '.' {
			n++
		}
	}
	return n
}

// docGetTyped resolves a dotted path whose value matches the attribute
// type; a literal dotted member shadows descent (as in jsonx.PathGet).
func docGetTyped(doc *jsonx.Doc, path string, want serial.AttrType) (jsonx.Value, bool) {
	v, ok := jsonx.PathGet(doc, path)
	if !ok {
		return jsonx.Value{}, false
	}
	at, typed := serial.AttrTypeOf(v)
	if !typed || at != want {
		return jsonx.Value{}, false
	}
	return v, true
}

// docDeletePath removes the member at a dotted path (type-checked);
// reports whether something was removed. Empty parents are kept (their
// absence vs emptiness is not observable through the logical view).
func docDeletePath(doc *jsonx.Doc, path string, want serial.AttrType) bool {
	if v, ok := doc.Get(path); ok {
		if at, typed := serial.AttrTypeOf(v); typed && at == want {
			return doc.Delete(path)
		}
		return false
	}
	for i := 0; i < len(path); i++ {
		if path[i] != '.' {
			continue
		}
		head, rest := path[:i], path[i+1:]
		if sub, ok := doc.Get(head); ok && sub.Kind == jsonx.Object {
			if docDeletePath(sub.Obj, rest, want) {
				return true
			}
		}
	}
	return false
}

// docSetPath writes a value at a dotted path, descending into existing
// nested objects and otherwise setting a literal dotted member (matching
// how the loader catalogs flattened paths).
func docSetPath(doc *jsonx.Doc, path string, v jsonx.Value) {
	for i := 0; i < len(path); i++ {
		if path[i] != '.' {
			continue
		}
		head, rest := path[:i], path[i+1:]
		if sub, ok := doc.Get(head); ok && sub.Kind == jsonx.Object {
			docSetPath(sub.Obj, rest, v)
			return
		}
	}
	doc.Set(path, v)
}
