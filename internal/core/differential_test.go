package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/sinewdata/sinew/internal/jsonx"
)

// TestDifferentialPredicates cross-checks Sinew's full pipeline (loader →
// rewriter → planner → executor → extraction UDFs) against a direct Go
// evaluation of the same predicate over the same documents, across random
// workloads. Any disagreement is a bug in one of the layers.
func TestDifferentialPredicates(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		docs := randomDocs(r, 60)

		db := Open(DefaultConfig())
		if err := db.CreateCollection("d"); err != nil {
			t.Fatal(err)
		}
		if _, err := db.LoadDocuments("d", docs); err != nil {
			t.Fatal(err)
		}
		// Half the runs also materialize + analyze a couple of keys so the
		// physical/virtual split varies.
		if r.Intn(2) == 0 {
			for _, k := range []string{"num", "name"} {
				if err := db.SetMaterialized("d", k, true); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := NewMaterializer(db).RunOnce("d"); err != nil {
				t.Fatal(err)
			}
			if err := db.RDBMS().Analyze("d"); err != nil {
				t.Fatal(err)
			}
		}

		for i := 0; i < 8; i++ {
			pred := randomPredicate(r)
			sql := fmt.Sprintf(`SELECT COUNT(*) FROM d WHERE %s`, pred.sql)
			res, err := db.Query(sql)
			if err != nil {
				t.Fatalf("seed %d: %s: %v", seed, sql, err)
			}
			got := res.Rows[0][0].I
			var want int64
			for _, doc := range docs {
				if pred.eval(doc) {
					want++
				}
			}
			if got != want {
				t.Fatalf("seed %d: %s\n sinew=%d reference=%d", seed, sql, got, want)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// randomDocs generates documents over a fixed key pool with mixed types
// and sparsity.
func randomDocs(r *rand.Rand, n int) []*jsonx.Doc {
	docs := make([]*jsonx.Doc, n)
	for i := range docs {
		d := jsonx.NewDoc()
		d.Set("num", jsonx.IntValue(int64(r.Intn(20))))
		if r.Intn(4) > 0 {
			d.Set("name", jsonx.StringValue(fmt.Sprintf("n%d", r.Intn(6))))
		}
		if r.Intn(2) == 0 {
			d.Set("score", jsonx.FloatValue(float64(r.Intn(100))/4))
		}
		if r.Intn(3) == 0 {
			d.Set("flag", jsonx.BoolValue(r.Intn(2) == 0))
		}
		switch r.Intn(3) { // multi-typed key
		case 0:
			d.Set("dyn", jsonx.IntValue(int64(r.Intn(10))))
		case 1:
			d.Set("dyn", jsonx.StringValue(fmt.Sprintf("s%d", r.Intn(4))))
		}
		sub := jsonx.NewDoc()
		sub.Set("lang", jsonx.StringValue([]string{"en", "pl", "de"}[r.Intn(3)]))
		d.Set("user", jsonx.ObjectValue(sub))
		docs[i] = d
	}
	return docs
}

// predicate pairs SQL text with a reference evaluator.
type predicate struct {
	sql  string
	eval func(*jsonx.Doc) bool
}

func randomPredicate(r *rand.Rand) predicate {
	leaf := func() predicate {
		switch r.Intn(8) {
		case 0: // integer equality
			v := int64(r.Intn(20))
			return predicate{
				sql: fmt.Sprintf("num = %d", v),
				eval: func(d *jsonx.Doc) bool {
					x, ok := d.Get("num")
					return ok && x.Kind == jsonx.Int && x.I == v
				},
			}
		case 1: // range
			lo := int64(r.Intn(10))
			hi := lo + int64(r.Intn(10))
			return predicate{
				sql: fmt.Sprintf("num BETWEEN %d AND %d", lo, hi),
				eval: func(d *jsonx.Doc) bool {
					x, ok := d.Get("num")
					return ok && x.Kind == jsonx.Int && x.I >= lo && x.I <= hi
				},
			}
		case 2: // text equality on a sparse key
			v := fmt.Sprintf("n%d", r.Intn(6))
			return predicate{
				sql: fmt.Sprintf("name = '%s'", v),
				eval: func(d *jsonx.Doc) bool {
					x, ok := d.Get("name")
					return ok && x.Kind == jsonx.String && x.S == v
				},
			}
		case 3: // IS NULL on a sparse key
			return predicate{
				sql: "score IS NULL",
				eval: func(d *jsonx.Doc) bool {
					_, ok := d.Get("score")
					return !ok
				},
			}
		case 4: // IS NOT NULL
			return predicate{
				sql: "flag IS NOT NULL",
				eval: func(d *jsonx.Doc) bool {
					_, ok := d.Get("flag")
					return ok
				},
			}
		case 5: // multi-typed key, numeric context
			v := int64(r.Intn(10))
			return predicate{
				sql: fmt.Sprintf("dyn >= %d", v),
				eval: func(d *jsonx.Doc) bool {
					x, ok := d.Get("dyn")
					return ok && x.Kind == jsonx.Int && x.I >= v
				},
			}
		case 6: // nested key
			v := []string{"en", "pl", "de"}[r.Intn(3)]
			return predicate{
				sql: fmt.Sprintf(`"user.lang" = '%s'`, v),
				eval: func(d *jsonx.Doc) bool {
					x, ok := jsonx.PathGet(d, "user.lang")
					return ok && x.Kind == jsonx.String && x.S == v
				},
			}
		default: // float comparison
			v := float64(r.Intn(100)) / 4
			return predicate{
				sql: fmt.Sprintf("score > %g", v),
				eval: func(d *jsonx.Doc) bool {
					x, ok := d.Get("score")
					return ok && x.Kind == jsonx.Float && x.F > v
				},
			}
		}
	}
	p := leaf()
	for i := 0; i < r.Intn(3); i++ {
		q := leaf()
		if r.Intn(2) == 0 {
			a, b := p, q
			p = predicate{
				sql:  fmt.Sprintf("(%s) AND (%s)", a.sql, b.sql),
				eval: func(d *jsonx.Doc) bool { return a.eval(d) && b.eval(d) },
			}
		} else {
			a, b := p, q
			p = predicate{
				sql:  fmt.Sprintf("(%s) OR (%s)", a.sql, b.sql),
				eval: func(d *jsonx.Doc) bool { return a.eval(d) || b.eval(d) },
			}
		}
	}
	return p
}
