package core

import (
	"strings"
	"testing"
)

// TestOrderByDifferential pins the batch-native sort's correctness
// contract: ORDER BY (multi-key, ASC/DESC, NULL ordering, virtual and
// multi-typed keys) and ORDER BY + LIMIT return byte-identical results —
// same rows, same order — across the row reference, the serial batch
// pipeline, the striped scan, and the parallel sorted-merge gather. The
// comparison is order-preserving on purpose: local stable sorts over
// ascending page ranges merged with a partition-index tie-break must
// reproduce the serial stable sort exactly, ties included.
func TestOrderByDifferential(t *testing.T) {
	db, _ := segmentDB(t)
	queries := []string{
		// Ties on num exercise stability across every leg.
		`SELECT name, num FROM d ORDER BY num`,
		`SELECT name, num, score FROM d ORDER BY num DESC, name`,
		// Sparse key: NULLs last ascending, first descending.
		`SELECT num, score FROM d ORDER BY score, num`,
		`SELECT num, score FROM d ORDER BY score DESC, num DESC`,
		// Virtual key below the sort; multi-typed key ordered by type tag.
		`SELECT "user.lang", num FROM d ORDER BY "user.lang" DESC, num`,
		`SELECT dyn, num FROM d ORDER BY dyn, num`,
		// Filtered input: the sorter consumes selection-carrying batches.
		`SELECT name, num FROM d WHERE num >= 5 ORDER BY num, name`,
		// Top-N substitution, bounded and unbounded-looking limits.
		`SELECT name, num FROM d ORDER BY num, name LIMIT 13`,
		`SELECT num FROM d WHERE num < 15 ORDER BY num DESC LIMIT 5`,
		`SELECT name, num FROM d ORDER BY num LIMIT 100000`,
	}
	for _, q := range queries {
		var ref string
		for _, leg := range segmentLegs {
			mustSet(t, db, leg.stmts...)
			res, err := db.Query(q)
			if err != nil {
				t.Fatalf("%s: %s: %v", leg.name, q, err)
			}
			key := resultKey(res) // order-preserving
			if leg.name == "row" {
				ref = key
				continue
			}
			if key != ref {
				t.Errorf("%s: %s diverges from row mode\nrow:\n%s\n%s:\n%s",
					leg.name, q, ref, leg.name, key)
			}
		}
	}
	mustSet(t, db, segmentLegs[0].stmts...)
}

// TestOrderByExplain pins the EXPLAIN surface of the sorted-merge gather:
// a parallel ORDER BY shows "Gather" with "Merge: sorted", ORDER BY +
// LIMIT substitutes a bounded "Top-N", and the serial batch plan labels
// its sort as batch.
func TestOrderByExplain(t *testing.T) {
	db, _ := segmentDB(t)
	mustSet(t, db, `SET enable_batch = on`, `SET enable_striped = on`,
		`SET max_parallel_workers = 4`, `SET parallel_scan_min_pages = 1`)

	text, err := db.Explain(`SELECT name, num FROM d ORDER BY num`)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Gather", "Merge: sorted"} {
		if !strings.Contains(text, want) {
			t.Errorf("parallel ORDER BY EXPLAIN should show %q:\n%s", want, text)
		}
	}

	text, err = db.Explain(`SELECT name, num FROM d ORDER BY num LIMIT 7`)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Top-N", "Merge: sorted"} {
		if !strings.Contains(text, want) {
			t.Errorf("parallel ORDER BY LIMIT EXPLAIN should show %q:\n%s", want, text)
		}
	}

	mustSet(t, db, `SET max_parallel_workers = 1`)
	text, err = db.Explain(`SELECT name, num FROM d ORDER BY num`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "Sort") || !strings.Contains(text, "(batch)") {
		t.Errorf("serial batch ORDER BY EXPLAIN should show a batch Sort:\n%s", text)
	}
	mustSet(t, db, segmentLegs[0].stmts...)
}

// TestSinewStatsSortCounters checks the sort observability surface:
// batch sorts count the batches they accumulate, parallel sorts count
// their merge partitions, and bounded Top-N counts heap short-circuits.
func TestSinewStatsSortCounters(t *testing.T) {
	db, _ := segmentDB(t)
	mustSet(t, db, `SET enable_batch = on`, `SET max_parallel_workers = 1`)
	before := statCounter(t, db, "sort_batches")
	if _, err := db.Query(`SELECT name, num FROM d ORDER BY num`); err != nil {
		t.Fatal(err)
	}
	if got := statCounter(t, db, "sort_batches"); got <= before {
		t.Errorf("sort_batches stuck at %d after a batch sort", got)
	}

	mustSet(t, db, `SET max_parallel_workers = 4`, `SET parallel_scan_min_pages = 1`)
	mergeBefore := statCounter(t, db, "sorted_merge_partitions")
	if _, err := db.Query(`SELECT name, num FROM d ORDER BY num`); err != nil {
		t.Fatal(err)
	}
	if got := statCounter(t, db, "sorted_merge_partitions"); got <= mergeBefore {
		t.Errorf("sorted_merge_partitions stuck at %d after a parallel sort", got)
	}

	shortBefore := statCounter(t, db, "topn_short_circuits")
	if _, err := db.Query(`SELECT name, num FROM d ORDER BY num LIMIT 3`); err != nil {
		t.Fatal(err)
	}
	if got := statCounter(t, db, "topn_short_circuits"); got <= shortBefore {
		t.Errorf("topn_short_circuits stuck at %d after a Top-N over 400 rows", got)
	}
	mustSet(t, db, segmentLegs[0].stmts...)
}
