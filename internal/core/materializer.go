package core

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"github.com/sinewdata/sinew/internal/jsonx"
	"github.com/sinewdata/sinew/internal/rdbms/storage"
	"github.com/sinewdata/sinew/internal/rdbms/types"
	"github.com/sinewdata/sinew/internal/serial"
	"github.com/sinewdata/sinew/internal/sqlutil"
)

// Materializer is the background column materializer (§3.1.4): it polls the
// catalog for dirty columns and incrementally moves values between the
// column reservoir and physical columns, one atomic row update at a time.
// The whole pass is interruptible — Pause() makes it yield between rows and
// queries run correctly against partially-materialized (dirty) columns via
// the rewriter's COALESCE.
type Materializer struct {
	db     *DB
	paused atomic.Bool

	// RowsMoved counts values moved since creation (observability).
	RowsMoved atomic.Int64
	// Passes counts completed full passes.
	Passes atomic.Int64
}

// NewMaterializer returns a materializer for db.
func NewMaterializer(db *DB) *Materializer { return &Materializer{db: db} }

// Pause makes the materializer yield between row updates; queries can run
// against the partially-materialized state.
func (m *Materializer) Pause() { m.paused.Store(true) }

// Resume lifts a Pause.
func (m *Materializer) Resume() { m.paused.Store(false) }

// Paused reports the pause flag.
func (m *Materializer) Paused() bool { return m.paused.Load() }

// Run polls every collection at the given interval until ctx is cancelled —
// the "background process running when there are spare resources" shape of
// the paper's Postgres worker.
func (m *Materializer) Run(ctx context.Context, interval time.Duration) {
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			for _, coll := range m.db.cat.Collections() {
				_, _ = m.RunOnce(coll)
			}
		}
	}
}

// RunOnce processes all dirty columns of one collection. It returns the
// number of row-values moved. If paused mid-pass it returns early with the
// work done so far and the dirty bits still set; the next call resumes
// (the process is idempotent because direction and placement are read from
// the data itself).
func (m *Materializer) RunOnce(collection string) (int64, error) {
	collection = strings.ToLower(collection)
	tc, ok := m.db.cat.Lookup(collection)
	if !ok {
		return 0, fmt.Errorf("core: collection %q does not exist", collection)
	}
	dirty := tc.DirtyColumns()
	if len(dirty) == 0 {
		return 0, nil
	}
	// The loader and materializer exclude each other via the catalog latch.
	if !tc.TryLatch() {
		return 0, nil
	}
	defer tc.Unlatch()

	// Ensure physical columns exist for materialization targets.
	for _, col := range dirty {
		if col.Materialized && col.PhysicalName == "" {
			name := m.db.physicalColumnName(tc, col)
			stmt := fmt.Sprintf("ALTER TABLE %s ADD COLUMN %s %s",
				collection, sqlutil.QuoteIdent(name), sqlTypeOf(col.Type).String())
			if _, err := m.db.rdb.Exec(stmt); err != nil {
				return 0, err
			}
			tc.mu.Lock()
			col.PhysicalName = name
			tc.mu.Unlock()
		}
	}

	schema, err := m.db.rdb.TableSchema(collection)
	if err != nil {
		return 0, err
	}
	reservoirIdx := schema.ColumnIndex(ReservoirColumn)

	// Collect the row IDs first (under a read lock), then update row by
	// row, each update atomic (§3.1.4).
	type pending struct {
		id  storage.RowID
		row storage.Row
	}
	var work []pending
	err = m.db.rdb.ScanTable(collection, func(id storage.RowID, row storage.Row) bool {
		work = append(work, pending{id: id, row: row.Clone()})
		return true
	})
	if err != nil {
		return 0, err
	}

	// Order matters for nested keys sharing a pass: dematerializations run
	// shallow-first (a returning parent must land before its subkeys are
	// written over it), then materializations deep-first (a subkey must be
	// copied out before its parent object is moved).
	ordered := make([]*ColumnInfo, 0, len(dirty))
	for _, c := range dirty {
		if !c.Materialized {
			ordered = append(ordered, c)
		}
	}
	sort.SliceStable(ordered, func(i, j int) bool {
		return pathDepth(ordered[i].Key) < pathDepth(ordered[j].Key)
	})
	mats := make([]*ColumnInfo, 0, len(dirty))
	for _, c := range dirty {
		if c.Materialized {
			mats = append(mats, c)
		}
	}
	sort.SliceStable(mats, func(i, j int) bool {
		return pathDepth(mats[i].Key) > pathDepth(mats[j].Key)
	})
	ordered = append(ordered, mats...)

	var moved int64
	interrupted := false
	for _, w := range work {
		if m.paused.Load() {
			interrupted = true
			break
		}
		row := w.row
		changed := false
		var doc *jsonx.Doc
		if !row[reservoirIdx].IsNull() {
			d, err := serial.Deserialize(row[reservoirIdx].Bs, m.db.dict())
			if err != nil {
				return moved, err
			}
			doc = d
		} else {
			doc = jsonx.NewDoc()
		}
		for _, col := range ordered {
			if col.PhysicalName == "" {
				continue // dematerialization of a never-created column
			}
			physIdx := schema.ColumnIndex(col.PhysicalName)
			if physIdx < 0 {
				continue
			}
			if col.Materialized {
				v, found := docGetTyped(doc, col.Key, col.Type)
				if !found {
					continue
				}
				d, err := datumFromJSON(v, m.db.dict())
				if err != nil {
					return moved, err
				}
				// The reservoir copy stays in place for now: §4.2's top-level
				// MOVE is completed by the purge sweep below, after the epoch
				// bump, so plans bound to either location keep seeing the
				// value throughout this sweep.
				row[physIdx] = d
				changed = true
				moved++
			} else {
				// Physical column → reservoir (overwriting any stale copy a
				// nested parent may hold). The physical value stays in place:
				// plans bound before the mode flip still read the column
				// directly, so both locations must agree until the end-of-pass
				// DROP COLUMN removes the physical side wholesale. A resumed
				// pass re-copies already-moved rows, which is idempotent.
				if row[physIdx].IsNull() {
					continue
				}
				jv, err := jsonFromDatum(row[physIdx], m.db.dict())
				if err != nil {
					return moved, err
				}
				docSetPath(doc, col.Key, jv)
				changed = true
				moved++
			}
		}
		if !changed {
			continue
		}
		data, err := serial.Serialize(doc, m.db.dict())
		if err != nil {
			return moved, err
		}
		row[reservoirIdx] = types.NewBytes(data)
		// One atomic row update; queries between updates see a consistent
		// (partially materialized) state.
		if err := m.db.rdb.UpdateRow(collection, w.id, row); err != nil {
			return moved, err
		}
	}
	m.RowsMoved.Add(moved)
	// Values gained a second location (reservoir ↔ physical column);
	// cached plans that bound either representation must be rebuilt.
	m.db.rdb.BumpCatalogEpoch()
	if interrupted {
		return moved, nil // dirty bits stay set; next run resumes
	}

	// Purge sweep: complete the §4.2 top-level MOVE by deleting the
	// reservoir copies of promoted keys (nested keys stay COPIED so the
	// parent object remains whole-referenceable). This runs after the
	// epoch bump, so stale extract-based plans were invalidated while the
	// copies were still in place; plans built during this sweep still see
	// the dirty bit and COALESCE over the physical column, which the copy
	// sweep filled. Rows are re-read rather than reusing the first
	// snapshot so updates landed between the sweeps are preserved.
	var purge []*ColumnInfo
	for _, col := range mats {
		if pathDepth(col.Key) == 1 && col.PhysicalName != "" {
			purge = append(purge, col)
		}
	}
	if len(purge) > 0 {
		work = work[:0]
		err = m.db.rdb.ScanTable(collection, func(id storage.RowID, row storage.Row) bool {
			work = append(work, pending{id: id, row: row.Clone()})
			return true
		})
		if err != nil {
			return moved, err
		}
		for _, w := range work {
			if m.paused.Load() {
				return moved, nil // dirty bits stay set; next run redoes the pass
			}
			row := w.row
			if row[reservoirIdx].IsNull() {
				continue
			}
			doc, err := serial.Deserialize(row[reservoirIdx].Bs, m.db.dict())
			if err != nil {
				return moved, err
			}
			changed := false
			for _, col := range purge {
				if _, found := docGetTyped(doc, col.Key, col.Type); found {
					docDeletePath(doc, col.Key, col.Type)
					changed = true
				}
			}
			if !changed {
				continue
			}
			data, err := serial.Serialize(doc, m.db.dict())
			if err != nil {
				return moved, err
			}
			row[reservoirIdx] = types.NewBytes(data)
			if err := m.db.rdb.UpdateRow(collection, w.id, row); err != nil {
				return moved, err
			}
		}
	}

	// Full pass complete: clear dirty bits; drop columns fully
	// dematerialized.
	for _, col := range dirty {
		if !col.Materialized && col.PhysicalName != "" {
			stmt := fmt.Sprintf("ALTER TABLE %s DROP COLUMN %s",
				collection, sqlutil.QuoteIdent(col.PhysicalName))
			if _, err := m.db.rdb.Exec(stmt); err != nil {
				return moved, err
			}
			tc.mu.Lock()
			col.PhysicalName = ""
			tc.mu.Unlock()
		}
		tc.setDirty(col.AttrID, false)
	}
	m.Passes.Add(1)
	// Dirty bits cleared: the rewriter now emits plain column references
	// instead of COALESCE fallbacks for the finished columns.
	m.db.rdb.BumpCatalogEpoch()
	return moved, nil
}
