package core

import (
	"fmt"
	"strings"

	"github.com/sinewdata/sinew/internal/rdbms/storage"
	"github.com/sinewdata/sinew/internal/serial"
	"github.com/sinewdata/sinew/internal/textindex"
)

// Search runs a text-index query directly (the programmatic form of the
// matches() SQL function, §4.3): field "*" searches every attribute. It
// returns matching document _ids.
func (db *DB) Search(collection, field, query string) ([]int64, error) {
	if db.index == nil {
		return nil, fmt.Errorf("core: text search requires Config.EnableTextIndex")
	}
	if _, ok := db.cat.Lookup(strings.ToLower(collection)); !ok {
		return nil, fmt.Errorf("core: collection %q does not exist", collection)
	}
	ids, err := db.index.Query(field, query)
	if err != nil {
		return nil, err
	}
	out := make([]int64, len(ids))
	for i, id := range ids {
		out[i] = int64(id)
	}
	return out, nil
}

// ReindexCollection rebuilds the text index entries for a collection from
// its current stored state. The loader indexes documents at load time;
// SQL UPDATEs that change text values leave stale postings behind, so
// write-heavy search workloads should reindex periodically (the same
// batch-refresh discipline a production Solr deployment uses).
func (db *DB) ReindexCollection(collection string) error {
	if db.index == nil {
		return fmt.Errorf("core: text search requires Config.EnableTextIndex")
	}
	collection = strings.ToLower(collection)
	tc, ok := db.cat.Lookup(collection)
	if !ok {
		return fmt.Errorf("core: collection %q does not exist", collection)
	}
	schema, err := db.rdb.TableSchema(collection)
	if err != nil {
		return err
	}
	idIdx := schema.ColumnIndex(IDColumn)
	resIdx := schema.ColumnIndex(ReservoirColumn)

	// Snapshot rows (id, reservoir, physical text columns) under the read
	// lock, then rebuild outside it.
	type snap struct {
		id   int64
		data []byte
		phys map[string]string
	}
	var snaps []snap
	textCols := map[int]string{} // column index -> logical key
	for _, col := range tc.Columns() {
		phys, _, _ := tc.matState(col)
		if phys == "" || col.Type != serial.TypeString {
			continue
		}
		if i := schema.ColumnIndex(phys); i >= 0 {
			textCols[i] = col.Key
		}
	}
	scanErr := db.rdb.ScanTable(collection, func(_ storage.RowID, row storage.Row) bool {
		if row[idIdx].IsNull() {
			return true
		}
		s := snap{id: row[idIdx].I}
		if !row[resIdx].IsNull() {
			s.data = append([]byte(nil), row[resIdx].Bs...)
		}
		for ci, key := range textCols {
			if !row[ci].IsNull() {
				if s.phys == nil {
					s.phys = map[string]string{}
				}
				s.phys[key] = row[ci].S
			}
		}
		snaps = append(snaps, s)
		return true
	})
	if scanErr != nil {
		return scanErr
	}
	for _, s := range snaps {
		db.index.Remove(textindex.DocID(s.id))
		if s.data != nil {
			doc, err := serial.Deserialize(s.data, db.dict())
			if err != nil {
				return err
			}
			db.indexDocument(s.id, doc)
		}
		for key, text := range s.phys {
			db.index.Add(textindex.DocID(s.id), key, text)
		}
	}
	return nil
}
