// Package core implements Sinew itself (§3–§4 of the paper): the catalog,
// hybrid physical schema, loader, schema analyzer, column materializer,
// query rewriter, and text-search integration — all layered on the
// unmodified embedded RDBMS in internal/rdbms.
package core

import (
	"fmt"

	"github.com/sinewdata/sinew/internal/jsonx"
	"github.com/sinewdata/sinew/internal/rdbms/types"
	"github.com/sinewdata/sinew/internal/serial"
)

// sqlTypeOf maps an attribute type to the SQL column type used when the
// attribute is materialized as a physical column. Nested documents
// materialize as bytea holding a serialized sub-record (§6.1: nested_obj is
// "itself a serialized data column").
func sqlTypeOf(t serial.AttrType) types.Type {
	switch t {
	case serial.TypeString:
		return types.Text
	case serial.TypeInt:
		return types.Int
	case serial.TypeFloat:
		return types.Float
	case serial.TypeBool:
		return types.Bool
	case serial.TypeObject:
		return types.Bytes
	case serial.TypeArray:
		return types.Array
	default:
		return types.Unknown
	}
}

// datumFromJSON converts an extracted JSON value to a SQL datum. Nested
// objects become their serialized sub-record bytes; arrays convert
// element-wise.
func datumFromJSON(v jsonx.Value, dict serial.Dict) (types.Datum, error) {
	switch v.Kind {
	case jsonx.Null:
		return types.Datum{Null: true}, nil
	case jsonx.Bool:
		return types.NewBool(v.B), nil
	case jsonx.Int:
		return types.NewInt(v.I), nil
	case jsonx.Float:
		return types.NewFloat(v.F), nil
	case jsonx.String:
		return types.NewText(v.S), nil
	case jsonx.Object:
		data, err := serial.Serialize(v.Obj, dict)
		if err != nil {
			return types.Datum{}, err
		}
		return types.NewBytes(data), nil
	case jsonx.Array:
		elems := make([]types.Datum, len(v.A))
		for i, e := range v.A {
			d, err := datumFromJSON(e, dict)
			if err != nil {
				return types.Datum{}, err
			}
			elems[i] = d
		}
		return types.NewArray(elems...), nil
	default:
		return types.Datum{}, fmt.Errorf("core: cannot convert %v to a datum", v.Kind)
	}
}

// jsonFromDatum converts a SQL datum back into a JSON value (the
// dematerialization direction). Bytes are assumed to hold a serialized
// sub-record.
func jsonFromDatum(d types.Datum, dict serial.Dict) (jsonx.Value, error) {
	if d.IsNull() {
		return jsonx.NullValue(), nil
	}
	switch d.Typ {
	case types.Bool:
		return jsonx.BoolValue(d.B), nil
	case types.Int:
		return jsonx.IntValue(d.I), nil
	case types.Float:
		return jsonx.FloatValue(d.F), nil
	case types.Text:
		return jsonx.StringValue(d.S), nil
	case types.Bytes:
		doc, err := serial.Deserialize(d.Bs, dict)
		if err != nil {
			return jsonx.Value{}, err
		}
		return jsonx.ObjectValue(doc), nil
	case types.Array:
		elems := make([]jsonx.Value, len(d.A))
		for i, e := range d.A {
			v, err := jsonFromDatum(e, dict)
			if err != nil {
				return jsonx.Value{}, err
			}
			elems[i] = v
		}
		return jsonx.ArrayValue(elems...), nil
	default:
		return jsonx.Value{}, fmt.Errorf("core: cannot convert %v datum to JSON", d.Typ)
	}
}
