package core

import (
	"strings"
	"testing"

	"github.com/sinewdata/sinew/internal/jsonx"
)

func TestPositionalArrayAccess(t *testing.T) {
	db := Open(DefaultConfig())
	if err := db.CreateCollection("a", CollectionOptions{
		ArrayModes:      map[string]ArrayMode{"tags": ArrayPositional},
		PositionalLimit: 3,
	}); err != nil {
		t.Fatal(err)
	}
	docs := mustDocs(t,
		`{"id":1,"tags":["x","y","z","w"]}`,
		`{"id":2,"tags":["y"]}`,
	)
	if _, err := db.LoadDocuments("a", docs); err != nil {
		t.Fatal(err)
	}
	// Positional attributes are cataloged and queryable as virtual columns.
	res, err := db.Query(`SELECT id FROM a WHERE "tags.0" = 'x'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].I != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	// Positions beyond the record's array length are NULL.
	res, err = db.Query(`SELECT "tags.2" FROM a WHERE id = 2`)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Rows[0][0].IsNull() {
		t.Errorf("tags.2 for short array = %v", res.Rows[0][0])
	}
	// And positional columns can be materialized like any other.
	if err := db.SetMaterialized("a", "tags.0", true); err != nil {
		t.Fatal(err)
	}
	if _, err := NewMaterializer(db).RunOnce("a"); err != nil {
		t.Fatal(err)
	}
	res, err = db.Query(`SELECT id FROM a WHERE "tags.0" = 'y'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].I != 2 {
		t.Fatalf("after materialization rows = %v", res.Rows)
	}
}

func TestSplitNestedSubCollection(t *testing.T) {
	db := Open(DefaultConfig())
	if err := db.CreateCollection("orders", CollectionOptions{
		SplitNested: []string{"customer"},
	}); err != nil {
		t.Fatal(err)
	}
	docs := mustDocs(t,
		`{"total":10.5,"customer":{"name":"ada","tier":"gold"}}`,
		`{"total":3.0,"customer":{"name":"alan","tier":"free"}}`,
		`{"total":7.0}`,
	)
	if _, err := db.LoadDocuments("orders", docs); err != nil {
		t.Fatal(err)
	}
	// The parent no longer carries the nested object...
	if _, err := db.Query(`SELECT customer FROM orders`); err == nil {
		t.Error("split key should be gone from the parent's logical schema")
	}
	// ...and the sub-collection joins back at query time (§4.2).
	res, err := db.Query(`SELECT o.total FROM orders o, orders__customer c ` +
		`WHERE o._id = c.parent_id AND c.tier = 'gold'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].F != 10.5 {
		t.Fatalf("rows = %v", res.Rows)
	}
	// The sub-collection is a full Sinew collection: analyzable.
	if _, err := db.AnalyzeSchema("orders__customer"); err != nil {
		t.Fatal(err)
	}
}

func TestNestedParentMaterializationRouting(t *testing.T) {
	// Materialize the parent object; subkey extraction must route into the
	// parent's physical column (the reservoir no longer holds it).
	db := Open(DefaultConfig())
	db.CreateCollection("t")
	docs := mustDocs(t,
		`{"id":1,"user":{"lang":"en","score":5}}`,
		`{"id":2,"user":{"lang":"pl","score":9}}`,
	)
	if _, err := db.LoadDocuments("t", docs); err != nil {
		t.Fatal(err)
	}
	if err := db.SetMaterialized("t", "user", true); err != nil {
		t.Fatal(err)
	}
	if _, err := NewMaterializer(db).RunOnce("t"); err != nil {
		t.Fatal(err)
	}
	sql, _ := db.RewrittenSQL(`SELECT "user.lang" FROM t`)
	if !strings.Contains(sql, `t.user, 'lang'`) && !strings.Contains(sql, `"user", 'lang'`) {
		t.Errorf("extraction should target the parent column: %s", sql)
	}
	res, err := db.Query(`SELECT id FROM t WHERE "user.lang" = 'pl'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].I != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	// The whole object remains referenceable too.
	res, err = db.Query(`SELECT COUNT(*) FROM t WHERE user IS NOT NULL`)
	if err != nil || res.Rows[0][0].I != 2 {
		t.Fatalf("parent object count = %v err=%v", res.Rows, err)
	}
}

func TestSubkeyAndParentBothMaterialized(t *testing.T) {
	db := Open(DefaultConfig())
	db.CreateCollection("t")
	docs := mustDocs(t,
		`{"id":1,"user":{"lang":"en","score":5}}`,
		`{"id":2,"user":{"lang":"pl","score":9}}`,
	)
	db.LoadDocuments("t", docs)
	// Materialize both the subkey and the parent in one pass: the subkey
	// is copied (deep-first) and the parent keeps its full content.
	for _, k := range []string{"user.lang", "user"} {
		if err := db.SetMaterialized("t", k, true); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := NewMaterializer(db).RunOnce("t"); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(`SELECT id FROM t WHERE "user.lang" = 'en'`)
	if err != nil || len(res.Rows) != 1 || res.Rows[0][0].I != 1 {
		t.Fatalf("subkey query: %v %v", res.Rows, err)
	}
	// The parent object still contains the subkey (copy, not move).
	res, err = db.Query(`SELECT "user.score" FROM t WHERE id = 1`)
	if err != nil || res.Rows[0][0].I != 5 {
		t.Fatalf("score via parent: %v %v", res.Rows, err)
	}
}

func TestDeleteThroughLogicalView(t *testing.T) {
	db := webDB(t)
	res, err := db.Query(`DELETE FROM webrequests WHERE owner IS NOT NULL`)
	if err != nil || res.RowsAffected != 1 {
		t.Fatalf("delete: %v %v", res, err)
	}
	left, _ := db.Query(`SELECT COUNT(*) FROM webrequests`)
	if left.Rows[0][0].I != 1 {
		t.Errorf("remaining = %v", left.Rows[0][0])
	}
}

func TestUpdateCreatesNewAttribute(t *testing.T) {
	db := webDB(t)
	if _, err := db.Query(`UPDATE webrequests SET brand_new_key = 42 WHERE hits = 22`); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(`SELECT brand_new_key FROM webrequests WHERE hits = 22`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != 42 {
		t.Errorf("brand_new_key = %v", res.Rows[0][0])
	}
}

func TestUpdateSetNullRemovesKey(t *testing.T) {
	db := webDB(t)
	if _, err := db.Query(`UPDATE webrequests SET country = NULL WHERE hits = 22`); err != nil {
		t.Fatal(err)
	}
	res, _ := db.Query(`SELECT COUNT(*) FROM webrequests WHERE country IS NOT NULL`)
	if res.Rows[0][0].I != 0 {
		t.Errorf("country still present: %v", res.Rows[0][0])
	}
}

func TestAggregatesOverVirtualColumns(t *testing.T) {
	db := webDB(t)
	res, err := db.Query(`SELECT SUM(hits), AVG(hits), MIN(url), MAX(url) FROM webrequests`)
	if err != nil {
		t.Fatal(err)
	}
	r := res.Rows[0]
	if r[0].I != 37 || r[1].F != 18.5 {
		t.Errorf("sum/avg = %v %v", r[0], r[1])
	}
	if r[2].S != "www.sample-site.com" || r[3].S != "www.sample-site2.com" {
		t.Errorf("min/max = %v %v", r[2], r[3])
	}
}

func TestGroupByVirtualColumn(t *testing.T) {
	db := Open(DefaultConfig())
	db.CreateCollection("e")
	var docs []*jsonx.Doc
	for i := 0; i < 30; i++ {
		d := jsonx.NewDoc()
		d.Set("k", jsonx.StringValue(string(rune('a'+i%3))))
		d.Set("v", jsonx.IntValue(int64(i)))
		docs = append(docs, d)
	}
	db.LoadDocuments("e", docs)
	res, err := db.Query(`SELECT k, COUNT(*), SUM(v) FROM e GROUP BY k ORDER BY k`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 || res.Rows[0][1].I != 10 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestConcurrentQueriesDuringMaterialization(t *testing.T) {
	db := Open(Config{DensityThreshold: 0.5, CardinalityThreshold: 0})
	db.CreateCollection("c")
	var docs []*jsonx.Doc
	for i := 0; i < 500; i++ {
		d := jsonx.NewDoc()
		d.Set("v", jsonx.IntValue(int64(i)))
		docs = append(docs, d)
	}
	db.LoadDocuments("c", docs)
	db.AnalyzeSchema("c")
	m := NewMaterializer(db)

	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			for i := 0; i < 20; i++ {
				res, err := db.Query(`SELECT COUNT(*) FROM c WHERE v >= 0`)
				if err != nil {
					done <- err
					return
				}
				if res.Rows[0][0].I != 500 {
					done <- errCount(res.Rows[0][0].I)
					return
				}
			}
			done <- nil
		}()
	}
	if _, err := m.RunOnce("c"); err != nil {
		t.Fatal(err)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

type errCount int64

func (e errCount) Error() string { return "wrong count during materialization" }

func TestLoaderMaterializerLatchExclusion(t *testing.T) {
	db := Open(Config{DensityThreshold: 0.5, CardinalityThreshold: 0})
	db.CreateCollection("l")
	db.LoadDocuments("l", mustDocs(t, `{"v":1}`))
	db.AnalyzeSchema("l")
	tc, _ := db.cat.Lookup("l")
	tc.Latch() // simulate an in-flight load
	m := NewMaterializer(db)
	moved, err := m.RunOnce("l")
	if err != nil || moved != 0 {
		t.Fatalf("materializer should skip while latched: moved=%d err=%v", moved, err)
	}
	tc.Unlatch()
	moved, err = m.RunOnce("l")
	if err != nil || moved != 1 {
		t.Fatalf("after unlatch: moved=%d err=%v", moved, err)
	}
}

func TestCatalogCountsAndCardinality(t *testing.T) {
	db := Open(DefaultConfig())
	db.CreateCollection("s")
	var docs []*jsonx.Doc
	for i := 0; i < 100; i++ {
		d := jsonx.NewDoc()
		d.Set("always", jsonx.IntValue(int64(i)))
		if i%4 == 0 {
			d.Set("quarter", jsonx.StringValue("same"))
		}
		docs = append(docs, d)
	}
	db.LoadDocuments("s", docs)
	tc, _ := db.cat.Lookup("s")
	always := tc.ColumnsByKey("always")[0]
	if always.Count != 100 || always.Cardinality() != 100 {
		t.Errorf("always = count %d card %d", always.Count, always.Cardinality())
	}
	quarter := tc.ColumnsByKey("quarter")[0]
	if quarter.Count != 25 || quarter.Cardinality() != 1 {
		t.Errorf("quarter = count %d card %d", quarter.Count, quarter.Cardinality())
	}
}

func TestLoadJSONLinesErrors(t *testing.T) {
	db := Open(DefaultConfig())
	db.CreateCollection("x")
	if _, err := db.LoadJSONLines("x", strings.NewReader("{\"a\":1}\n{bad json\n")); err == nil {
		t.Error("invalid line should fail the load")
	}
	if _, err := db.LoadJSONLines("nope", strings.NewReader(`{"a":1}`)); err == nil {
		t.Error("unknown collection should error")
	}
}

func TestCollectionNameValidation(t *testing.T) {
	db := Open(DefaultConfig())
	for _, bad := range []string{"", "has space", "has-dash", "Данные"} {
		if err := db.CreateCollection(bad); err == nil {
			t.Errorf("name %q should be rejected", bad)
		}
	}
	if err := db.CreateCollection("ok_name_2"); err != nil {
		t.Errorf("valid name rejected: %v", err)
	}
	if err := db.CreateCollection("ok_name_2"); err == nil {
		t.Error("duplicate collection should error")
	}
}

func TestSearchAndReindex(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EnableTextIndex = true
	db := Open(cfg)
	db.CreateCollection("notes")
	db.LoadDocuments("notes", mustDocs(t,
		`{"id":1,"body":"the original text"}`,
		`{"id":2,"body":"something else entirely"}`,
	))
	ids, err := db.Search("notes", "*", "original")
	if err != nil || len(ids) != 1 {
		t.Fatalf("search = %v %v", ids, err)
	}
	// An UPDATE leaves the index stale until reindexing.
	if _, err := db.Query(`UPDATE notes SET body = 'replacement words' WHERE id = 1`); err != nil {
		t.Fatal(err)
	}
	if err := db.ReindexCollection("notes"); err != nil {
		t.Fatal(err)
	}
	if ids, _ := db.Search("notes", "*", "original"); len(ids) != 0 {
		t.Errorf("stale postings after reindex: %v", ids)
	}
	if ids, _ := db.Search("notes", "body", "replacement"); len(ids) != 1 {
		t.Errorf("new content not indexed: %v", ids)
	}
	// Reindex also covers materialized text columns.
	if err := db.SetMaterialized("notes", "body", true); err != nil {
		t.Fatal(err)
	}
	if _, err := NewMaterializer(db).RunOnce("notes"); err != nil {
		t.Fatal(err)
	}
	if err := db.ReindexCollection("notes"); err != nil {
		t.Fatal(err)
	}
	if ids, _ := db.Search("notes", "body", "entirely"); len(ids) != 1 {
		t.Errorf("materialized text lost from index: %v", ids)
	}
	// Errors.
	if _, err := db.Search("nope", "*", "x"); err == nil {
		t.Error("unknown collection should error")
	}
	dbNoIx := Open(DefaultConfig())
	dbNoIx.CreateCollection("c")
	if _, err := dbNoIx.Search("c", "*", "x"); err == nil {
		t.Error("search without index should error")
	}
}

func TestCatalogMirrorTables(t *testing.T) {
	db := webDB(t)
	if err := db.SyncCatalogTables(); err != nil {
		t.Fatal(err)
	}
	// The Figure 4a dictionary is queryable with plain SQL.
	res, err := db.RDBMS().Query(
		`SELECT key_name, key_type FROM sinew_attributes WHERE key_name = 'hits'`)
	if err != nil || len(res.Rows) != 1 || res.Rows[0][1].S != "integer" {
		t.Fatalf("dictionary = %v err=%v", res.Rows, err)
	}
	// The Figure 4b per-table half joins back to the dictionary.
	res, err = db.RDBMS().Query(
		`SELECT a.key_name, c.count, c.materialized FROM sinew_attributes a, ` +
			ColumnCatalogTable("webrequests") + ` c WHERE a._id = c._id ORDER BY a.key_name`)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, row := range res.Rows {
		if row[0].S == "url" {
			found = true
			if row[1].I != 2 || row[2].B {
				t.Errorf("url row = %v", row)
			}
		}
	}
	if !found {
		t.Error("url missing from the column catalog")
	}
	// Re-sync after changes refreshes the snapshot.
	db.SetMaterialized("webrequests", "url", true)
	if err := db.SyncCatalogTables(); err != nil {
		t.Fatal(err)
	}
	res, _ = db.RDBMS().Query(`SELECT c.materialized FROM sinew_attributes a, ` +
		ColumnCatalogTable("webrequests") + ` c WHERE a._id = c._id AND a.key_name = 'url'`)
	if !res.Rows[0][0].B {
		t.Error("materialized flag not refreshed")
	}
}
