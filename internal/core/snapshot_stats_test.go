package core

import (
	"strconv"
	"strings"
	"testing"
)

// TestSinewStatsSnapshotCounters checks the concurrency observability
// surface added with the snapshot read path (DESIGN.md §10): every
// counter sinew_stats() gained — snapshots_open, snapshot_epoch,
// pages_cow, sessions_active — moves when and only when its mechanism
// fires.
func TestSinewStatsSnapshotCounters(t *testing.T) {
	db := Open(DefaultConfig())
	rdb := db.RDBMS()
	mustSet(t, db, `CREATE TABLE snapcnt (a INT)`,
		`INSERT INTO snapcnt VALUES (1), (2), (3)`)

	cases := []struct {
		name  string
		key   string
		drive func(t *testing.T)
		check func(t *testing.T, before, after int64)
	}{
		{
			name: "snapshot_epoch advances when a write publishes",
			key:  "snapshot_epoch",
			drive: func(t *testing.T) {
				mustSet(t, db, `INSERT INTO snapcnt VALUES (4)`)
			},
			check: func(t *testing.T, before, after int64) {
				if after <= before {
					t.Errorf("snapshot_epoch stuck at %d after an INSERT published", after)
				}
			},
		},
		{
			name: "pages_cow counts pages cloned under UPDATE",
			key:  "pages_cow",
			drive: func(t *testing.T) {
				// The INSERTs above published the tail page; updating a row
				// on it must clone it rather than write the shared version.
				mustSet(t, db, `UPDATE snapcnt SET a = a + 10 WHERE a = 1`)
			},
			check: func(t *testing.T, before, after int64) {
				if after <= before {
					t.Errorf("pages_cow stuck at %d after an UPDATE hit a published page", after)
				}
			},
		},
		{
			name: "sessions_active follows the session gauge",
			key:  "sessions_active",
			drive: func(t *testing.T) {
				rdb.SessionEnter()
			},
			check: func(t *testing.T, before, after int64) {
				defer rdb.SessionExit()
				if after != before+1 {
					t.Errorf("sessions_active = %d after SessionEnter, want %d", after, before+1)
				}
			},
		},
		{
			name: "snapshots_open drains to zero between statements",
			key:  "snapshots_open",
			drive: func(t *testing.T) {
				if _, err := db.Query(`SELECT COUNT(*) FROM snapcnt`); err != nil {
					t.Fatal(err)
				}
			},
			check: func(t *testing.T, _, after int64) {
				if after != 0 {
					t.Errorf("snapshots_open = %d at rest; statement pins leaked", after)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			before := statCounter(t, db, tc.key)
			tc.drive(t)
			tc.check(t, before, statCounter(t, db, tc.key))
		})
	}

	// Reading the gauge from inside a scanning statement shows that
	// statement's own pin: the planner acquired the snapshot before the
	// volatile UDF ran.
	res, err := db.Query(`SELECT sinew_stats() FROM snapcnt LIMIT 1`)
	if err != nil {
		t.Fatal(err)
	}
	text := res.Rows[0][0].S
	for _, field := range strings.Fields(text) {
		if rest, ok := strings.CutPrefix(field, "snapshots_open="); ok {
			v, perr := strconv.ParseInt(rest, 10, 64)
			if perr != nil {
				t.Fatalf("parsing %q: %v", field, perr)
			}
			if v < 1 {
				t.Errorf("snapshots_open = %d mid-scan, want >= 1 (statement's own pin)", v)
			}
			return
		}
	}
	t.Fatalf("sinew_stats output lacks snapshots_open: %q", text)
}
