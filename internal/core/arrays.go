package core

import (
	"fmt"

	"github.com/sinewdata/sinew/internal/jsonx"
	"github.com/sinewdata/sinew/internal/rdbms/storage"
	"github.com/sinewdata/sinew/internal/rdbms/types"
	"github.com/sinewdata/sinew/internal/serial"
)

// defaultPositionalLimit caps how many array positions are cataloged as
// dot-indexed attributes under ArrayPositional.
const defaultPositionalLimit = 8

// applyArrayModes implements the §4.2 strategies for one document's arrays.
// ArrayAsDatum needs no work (the array lives in the reservoir and converts
// to an RDBMS array datum on extraction). ArrayPositional catalogs "key.i"
// attributes so the analyzer may materialize hot positions.
// ArraySeparateTable shreds elements to a side table so the RDBMS keeps
// aggregate statistics over elements rather than per-position statistics.
func (db *DB) applyArrayModes(collection string, tc *CollectionCatalog, docID int64, doc *jsonx.Doc, opts CollectionOptions) error {
	for key, mode := range opts.ArrayModes {
		v, ok := jsonx.PathGet(doc, key)
		if !ok || v.Kind != jsonx.Array {
			continue
		}
		switch mode {
		case ArrayAsDatum:
			// default storage; nothing extra
		case ArrayPositional:
			limit := opts.PositionalLimit
			if limit <= 0 {
				limit = defaultPositionalLimit
			}
			var hashBuf []byte
			for i, e := range v.A {
				if i >= limit {
					break
				}
				at, typed := serial.AttrTypeOf(e)
				if !typed {
					continue
				}
				path := fmt.Sprintf("%s.%d", key, i)
				attr := serial.Attr{ID: db.dict().IDFor(path, at), Key: path, Type: at}
				d, err := datumFromJSON(e, db.dict())
				if err != nil {
					return err
				}
				hashBuf = d.HashKey(hashBuf[:0])
				tc.recordObservation(attr, string(hashBuf))
			}
		case ArraySeparateTable:
			if err := db.shredArray(collection, key, docID, v.A); err != nil {
				return err
			}
		}
	}
	return nil
}

// ArrayTableName is the side table for a shredded array key.
func ArrayTableName(collection, key string) string {
	return collection + "__" + sanitizeKey(key) + "_elems"
}

// SplitCollectionName is the sub-collection holding a split nested object.
func SplitCollectionName(collection, key string) string {
	return collection + "__" + sanitizeKey(key)
}

// splitNested extracts the configured nested-object keys of doc into
// per-sub-collection document lists (tagged with parent_id) and returns a
// copy of doc without them. When nothing applies, doc is returned as-is.
func (db *DB) splitNested(collection string, docID int64, doc *jsonx.Doc, opts CollectionOptions, out map[string][]*jsonx.Doc) *jsonx.Doc {
	var stripped *jsonx.Doc
	for _, key := range opts.SplitNested {
		v, ok := doc.Get(key)
		if !ok || v.Kind != jsonx.Object {
			continue
		}
		if stripped == nil {
			stripped = jsonx.NewDoc()
			for _, m := range doc.Members() {
				stripped.Set(m.Key, m.Val)
			}
		}
		stripped.Delete(key)
		sub := jsonx.NewDoc()
		sub.Set("parent_id", jsonx.IntValue(docID))
		for _, m := range v.Obj.Members() {
			sub.Set(m.Key, m.Val)
		}
		name := SplitCollectionName(collection, key)
		out[name] = append(out[name], sub)
	}
	if stripped == nil {
		return doc
	}
	return stripped
}

// ensureSplitCollections creates sub-collections and loads their pending
// documents (recursively full Sinew collections, without split options of
// their own).
func (db *DB) ensureSplitCollections(pending map[string][]*jsonx.Doc) error {
	for name, docs := range pending {
		if _, ok := db.cat.Lookup(name); !ok {
			if err := db.CreateCollection(name); err != nil {
				return err
			}
		}
		if _, err := db.LoadDocuments(name, docs); err != nil {
			return err
		}
	}
	return nil
}

func sanitizeKey(key string) string {
	out := make([]byte, 0, len(key))
	for i := 0; i < len(key); i++ {
		c := key[i]
		if c == '_' || c >= 'a' && c <= 'z' || c >= '0' && c <= '9' {
			out = append(out, c)
		} else {
			out = append(out, '_')
		}
	}
	return string(out)
}

// shredArray stores elements as (parent_id, idx, elem_text, elem_num,
// elem_bool) tuples; nested-object elements are additionally split per
// sub-attribute into elem_text as JSON (homogeneous-object splitting is the
// caller's schema decision; the element table keeps aggregate statistics
// per §4.2).
func (db *DB) shredArray(collection, key string, docID int64, elems []jsonx.Value) error {
	tbl := ArrayTableName(collection, key)
	if err := db.rdb.CreateTable(tbl, []storage.Column{
		{Name: "parent_id", Typ: types.Int, NotNull: true},
		{Name: "idx", Typ: types.Int, NotNull: true},
		{Name: "elem_text", Typ: types.Text},
		{Name: "elem_num", Typ: types.Float},
		{Name: "elem_bool", Typ: types.Bool},
	}, true); err != nil {
		return err
	}
	rows := make([]storage.Row, 0, len(elems))
	for i, e := range elems {
		row := storage.Row{
			types.NewInt(docID), types.NewInt(int64(i)),
			types.NewNull(types.Text), types.NewNull(types.Float), types.NewNull(types.Bool),
		}
		switch e.Kind {
		case jsonx.String:
			row[2] = types.NewText(e.S)
		case jsonx.Int:
			row[3] = types.NewFloat(float64(e.I))
		case jsonx.Float:
			row[3] = types.NewFloat(e.F)
		case jsonx.Bool:
			row[4] = types.NewBool(e.B)
		case jsonx.Object:
			row[2] = types.NewText(jsonx.ObjectValue(e.Obj).String())
		case jsonx.Array:
			row[2] = types.NewText(e.String())
		case jsonx.Null:
			// keep all NULLs: position exists, value null
		}
		rows = append(rows, row)
	}
	return db.rdb.InsertRows(tbl, rows)
}
