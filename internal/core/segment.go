package core

import (
	"bytes"
	"fmt"
	"math/bits"
	"strings"

	"github.com/sinewdata/sinew/internal/jsonx"
	"github.com/sinewdata/sinew/internal/rdbms/exec"
	"github.com/sinewdata/sinew/internal/rdbms/storage"
	"github.com/sinewdata/sinew/internal/rdbms/types"
	"github.com/sinewdata/sinew/internal/serial"
)

// This file connects the storage layer's frozen-page machinery to Sinew's
// serialized-record format. When ANALYZE (or load-time compaction) freezes
// a cold page, the installed segmenter stripes every record-holding Bytes
// column — the reservoir and materialized nested-object columns — into a
// serial.Segment: one typed vector per attribute, presence bitmaps, and a
// footer carrying the attribute-ID set and per-column min/max. The striped
// extraction kernel then answers fused sinew_extract_* requests by
// streaming those vectors instead of decoding each record, falling back to
// the exact row kernel for the rare rows that need a nested descent.

// recordSegment adapts a serial.Segment to storage.ColumnSegment.
type recordSegment struct {
	seg *serial.Segment
}

func (r *recordSegment) NumRows() int      { return r.seg.NumRecords() }
func (r *recordSegment) AttrIDs() []uint32 { return r.seg.AttrIDs() }

// AttrZones implements storage.ZoneMapped: the per-attribute presence
// counts and numeric extrema the segment footer already carries become
// page-summary zone maps, so range predicates on extracted keys can skip
// whole frozen pages without touching the segment payload.
func (r *recordSegment) AttrZones() []storage.AttrZone {
	n := r.seg.NumAttrs()
	out := make([]storage.AttrZone, 0, n)
	for i := 0; i < n; i++ {
		c := r.seg.ColumnAt(i)
		z := storage.AttrZone{ID: c.ID(), Present: c.NumPresent()}
		if lo, hi, ok := c.IntRange(); ok {
			z.Min, z.Max, z.HasRange = types.NewInt(lo), types.NewInt(hi), true
		} else if flo, fhi, fok := c.FloatRange(); fok {
			z.Min, z.Max, z.HasRange = types.NewFloat(flo), types.NewFloat(fhi), true
		}
		out = append(out, z)
	}
	return out
}

// Values reconstructs the column's datums (the un-freeze path). The bytes
// alias the segment, which outlives any row view built from it.
func (r *recordSegment) Values(dst []types.Datum) error {
	n := r.seg.NumRecords()
	for i := 0; i < n && i < len(dst); i++ {
		if b, ok := r.seg.RecordBytes(i); ok {
			dst[i] = types.NewBytes(b)
		} else {
			dst[i] = types.NewNull(types.Bytes)
		}
	}
	return nil
}

// reservoirSegmenter returns the ColumnSegmenter installed on every
// collection heap. A column stripes when all its non-NULL values are
// serialized records; anything else stays a plain vector ((nil, nil)), so
// freezing never depends on which columns the materializer has added.
// Encoding is verified by a full round-trip before the rows are dropped —
// a page that cannot be reproduced byte-for-byte keeps its row form.
func (db *DB) reservoirSegmenter() storage.ColumnSegmenter {
	return func(_ int, vals []types.Datum) (storage.ColumnSegment, error) {
		records := make([][]byte, len(vals))
		nonNull := 0
		for i, d := range vals {
			if d.IsNull() {
				continue
			}
			if d.Typ != types.Bytes {
				return nil, nil
			}
			records[i] = d.Bs
			nonNull++
		}
		if nonNull == 0 {
			return nil, nil
		}
		dict := db.dict()
		data, err := serial.EncodeSegment(records, dict)
		if err != nil {
			// Not a record column (or a corrupt value): keep the rows.
			return nil, nil
		}
		seg, err := serial.ParseSegment(data)
		if err != nil {
			return nil, fmt.Errorf("core: freeze round-trip parse: %w", err)
		}
		for i, want := range records {
			got, ok := seg.RecordBytes(i)
			if ok != (want != nil) || !bytes.Equal(got, want) {
				return nil, fmt.Errorf("core: freeze round-trip mismatch at row %d", i)
			}
		}
		return &recordSegment{seg: seg}, nil
	}
}

// strSpan locates one packed string value inside a kernel's string-vector
// scratch buffer: out[row] gets buffer[off:off+n].
type strSpan struct{ row, off, n int }

// stripedExtractFactory builds the segment-side kernel of the
// "sinew_extract" family (exec.SegExtractFactory). It must agree
// cell-for-cell with the row kernel registered in registerUDFs:
//
//   - a key cataloged as a literal (path, type) attribute streams straight
//     from the segment's typed vector for the rows where it is present;
//   - rows that could resolve through a nested descent (a dotted path with
//     an object/array-typed proper prefix present) or an untyped probe
//     (extract_any) replay the exact row-path MultiExtract on the record
//     bytes;
//   - everything else is the typed NULL the row path would produce.
func (db *DB) stripedExtractFactory(reqs []exec.MultiExtractReq) (exec.SegExtractKernel, error) {
	specs := make([]serial.MultiSpec, len(reqs))
	for i, r := range reqs {
		specs[i] = serial.MultiSpec{Path: r.Key, Want: serial.AttrType(r.Type), Any: r.Any}
	}
	dict := db.dict()
	pm := serial.PrepareMulti(specs, dict)

	// Vector-path specs: a resolved literal attribute read directly from
	// its segment column.
	type vecSpec struct {
		k    int
		id   uint32
		want serial.AttrType
	}
	var vecs []vecSpec
	// cands[k] lists the attribute IDs whose presence on a row forces that
	// row through the row-path fallback for spec k: the prefix objects and
	// arrays a dotted path can descend through, plus every typed candidate
	// of an Any probe. Rows presenting none of them provably resolve to
	// found=false (or to the literal vector value) on the row path too.
	cands := make([][]uint32, len(reqs))
	addPrefixIDs := func(k int, path string) {
		for i := 0; i < len(path); i++ {
			if path[i] != '.' {
				continue
			}
			if id, ok := dict.IDOf(path[:i], serial.TypeObject); ok {
				cands[k] = append(cands[k], id)
			}
			if id, ok := dict.IDOf(path[:i], serial.TypeArray); ok {
				cands[k] = append(cands[k], id)
			}
		}
	}
	for k, r := range reqs {
		if r.Any {
			for _, a := range dict.IDsOfKey(r.Key) {
				cands[k] = append(cands[k], a.ID)
			}
			addPrefixIDs(k, r.Key)
			continue
		}
		want := serial.AttrType(r.Type)
		if id, ok := dict.IDOf(r.Key, want); ok {
			vecs = append(vecs, vecSpec{k: k, id: id, want: want})
		}
		if strings.ContainsRune(r.Key, '.') {
			addPrefixIDs(k, r.Key)
		}
	}

	var rec serial.Record
	vals := make([]jsonx.Value, len(reqs))
	found := make([]bool, len(reqs))
	var fb []uint64
	// String-vector scratch: per-value byte slices are packed into one
	// buffer and converted with a single string allocation per column, the
	// datums slicing substrings out of it. Kernels are per-worker (the
	// factory runs once per scan goroutine), so the scratch is unshared.
	var strBuf []byte
	var strSpans []strSpan

	return func(cs storage.ColumnSegment, out [][]types.Datum) (bool, error) {
		rs, ok := cs.(*recordSegment)
		if !ok {
			return false, nil
		}
		seg := rs.seg
		n := seg.NumRecords()
		for k := range out {
			nullK := types.NewNull(reqs[k].Ret)
			col := out[k]
			for i := range col {
				col[i] = nullK
			}
		}

		// Mark the rows that need the row-path replay.
		words := (n + 63) / 64
		if cap(fb) < words {
			fb = make([]uint64, words)
		}
		fb = fb[:words]
		for w := range fb {
			fb[w] = 0
		}
		fbAny := false
		for k := range reqs {
			for _, id := range cands[k] {
				col, ok := seg.Column(id)
				if !ok {
					continue
				}
				for i := 0; i < n; i++ {
					if col.Present(i) {
						fb[i/64] |= 1 << uint(i%64)
						fbAny = true
					}
				}
			}
		}

		// Typed vector streams for literal attributes. Fallback rows are
		// filled here too and overwritten below with the identical value —
		// replaying the full row kernel there keeps every spec consistent.
		for _, v := range vecs {
			col, ok := seg.Column(v.id)
			if !ok {
				continue
			}
			outK := out[v.k]
			var err, cbErr error
			switch v.want {
			case serial.TypeString:
				strBuf, strSpans = strBuf[:0], strSpans[:0]
				err = col.Strings(func(row int, b []byte) {
					strSpans = append(strSpans, strSpan{row: row, off: len(strBuf), n: len(b)})
					strBuf = append(strBuf, b...)
				})
				if err == nil {
					all := string(strBuf)
					for _, sp := range strSpans {
						outK[sp.row] = types.NewText(all[sp.off : sp.off+sp.n])
					}
				}
			case serial.TypeInt:
				err = col.Ints(func(row int, x int64) {
					outK[row] = types.NewInt(x)
				})
			case serial.TypeFloat:
				err = col.Floats(func(row int, x float64) {
					outK[row] = types.NewFloat(x)
				})
			case serial.TypeBool:
				err = col.Bools(func(row int, x bool) {
					outK[row] = types.NewBool(x)
				})
			default: // TypeObject, TypeArray: raw-encoded sub-values
				err = col.Raws(func(row int, b []byte) {
					if cbErr != nil {
						return
					}
					jv, e := serial.DecodeRaw(b, v.want, dict)
					if e != nil {
						cbErr = e
						return
					}
					dm, e := datumFromJSON(jv, dict)
					if e != nil {
						cbErr = e
						return
					}
					outK[row] = dm
				})
			}
			if err == nil {
				err = cbErr
			}
			if err != nil {
				return true, err
			}
		}

		if !fbAny {
			return true, nil
		}
		for w, word := range fb {
			for word != 0 {
				i := w*64 + bits.TrailingZeros64(word)
				word &= word - 1
				b, ok := seg.RecordBytes(i)
				if !ok {
					continue
				}
				if err := rec.Reset(b); err != nil {
					return true, err
				}
				if err := rec.MultiExtract(pm, dict, vals, found); err != nil {
					return true, err
				}
				for k := range out {
					switch {
					case !found[k]:
						out[k][i] = types.NewNull(reqs[k].Ret)
					case reqs[k].Any:
						out[k][i] = types.NewText(vals[k].String())
					default:
						dm, err := datumFromJSON(vals[k], dict)
						if err != nil {
							return true, err
						}
						out[k][i] = dm
					}
				}
			}
		}
		return true, nil
	}, nil
}
