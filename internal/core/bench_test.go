package core

import (
	"fmt"
	"testing"

	"github.com/sinewdata/sinew/internal/jsonx"
)

// benchFixture loads n simple documents with one materialized and one
// virtual column.
func benchFixture(b *testing.B, n int) *DB {
	b.Helper()
	db := Open(DefaultConfig())
	if err := db.CreateCollection("b"); err != nil {
		b.Fatal(err)
	}
	docs := make([]*jsonx.Doc, n)
	for i := range docs {
		d := jsonx.NewDoc()
		d.Set("phys", jsonx.IntValue(int64(i)))
		d.Set("virt", jsonx.IntValue(int64(i)))
		d.Set("pad", jsonx.StringValue("some padding text to scan past"))
		docs[i] = d
	}
	if _, err := db.LoadDocuments("b", docs); err != nil {
		b.Fatal(err)
	}
	if err := db.SetMaterialized("b", "phys", true); err != nil {
		b.Fatal(err)
	}
	if _, err := NewMaterializer(db).RunOnce("b"); err != nil {
		b.Fatal(err)
	}
	if err := db.RDBMS().Analyze("b"); err != nil {
		b.Fatal(err)
	}
	return db
}

// BenchmarkQueryPhysicalColumn is the Appendix B physical baseline.
func BenchmarkQueryPhysicalColumn(b *testing.B) {
	db := benchFixture(b, 5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(`SELECT COUNT(*) FROM b WHERE phys >= 2500`); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryVirtualColumn is the Appendix B virtual counterpart.
func BenchmarkQueryVirtualColumn(b *testing.B) {
	db := benchFixture(b, 5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(`SELECT COUNT(*) FROM b WHERE virt >= 2500`); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLoad measures loader throughput (docs/op reported via N).
func BenchmarkLoad(b *testing.B) {
	docs := make([]*jsonx.Doc, 1000)
	for i := range docs {
		d := jsonx.NewDoc()
		d.Set("k", jsonx.IntValue(int64(i)))
		d.Set("s", jsonx.StringValue(fmt.Sprintf("value %d", i)))
		docs[i] = d
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		db := Open(DefaultConfig())
		if err := db.CreateCollection("l"); err != nil {
			b.Fatal(err)
		}
		if _, err := db.LoadDocuments("l", docs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMaterializerPass measures one full materialization pass.
func BenchmarkMaterializerPass(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		db := Open(DefaultConfig())
		db.CreateCollection("m")
		docs := make([]*jsonx.Doc, 2000)
		for j := range docs {
			d := jsonx.NewDoc()
			d.Set("v", jsonx.IntValue(int64(j)))
			docs[j] = d
		}
		db.LoadDocuments("m", docs)
		db.SetMaterialized("m", "v", true)
		m := NewMaterializer(db)
		b.StartTimer()
		if _, err := m.RunOnce("m"); err != nil {
			b.Fatal(err)
		}
	}
}
