package core

import (
	"strings"
	"testing"

	"github.com/sinewdata/sinew/internal/jsonx"
)

func mustDocs(t *testing.T, lines ...string) []*jsonx.Doc {
	t.Helper()
	out := make([]*jsonx.Doc, len(lines))
	for i, l := range lines {
		d, err := jsonx.ParseDocument([]byte(l))
		if err != nil {
			t.Fatalf("doc %d: %v", i, err)
		}
		out[i] = d
	}
	return out
}

// webDB loads the paper's Figure 2 dataset.
func webDB(t *testing.T) *DB {
	t.Helper()
	db := Open(DefaultConfig())
	if err := db.CreateCollection("webrequests"); err != nil {
		t.Fatal(err)
	}
	docs := mustDocs(t,
		`{"url":"www.sample-site.com","hits":22,"avg_site_visit":128.5,"country":"pl"}`,
		`{"url":"www.sample-site2.com","hits":15,"date":"8/19/13","ip":"123.45.67.89","owner":"John P. Smith"}`,
	)
	if _, err := db.LoadDocuments("webrequests", docs); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestLogicalViewBasics(t *testing.T) {
	db := webDB(t)
	// The paper's §3.1.1 example query.
	res, err := db.Query(`SELECT url FROM webrequests WHERE hits > 20`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].S != "www.sample-site.com" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestRewriterVirtualAndNull(t *testing.T) {
	db := webDB(t)
	// §3.2.2's example: virtual projection plus IS NOT NULL filter.
	res, err := db.Query(`SELECT url, owner FROM webrequests WHERE ip IS NOT NULL`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][0].S != "www.sample-site2.com" || res.Rows[0][1].S != "John P. Smith" {
		t.Errorf("row = %v", res.Rows[0])
	}
	// Missing keys surface as NULL for the row that lacks them.
	res, err = db.Query(`SELECT owner FROM webrequests WHERE hits = 22`)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Rows[0][0].IsNull() {
		t.Errorf("owner for site 1 should be NULL, got %v", res.Rows[0][0])
	}
}

func TestRewrittenSQLShape(t *testing.T) {
	db := webDB(t)
	sql, err := db.RewrittenSQL(`SELECT url, owner FROM webrequests WHERE ip IS NOT NULL`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sql, "sinew_extract_text") {
		t.Errorf("rewrite should use extraction: %s", sql)
	}
}

func TestUnknownColumnErrors(t *testing.T) {
	db := webDB(t)
	if _, err := db.Query(`SELECT nonexistent_key FROM webrequests`); err == nil {
		t.Error("expected unknown-column error")
	}
}

func TestNestedKeyAccess(t *testing.T) {
	db := Open(DefaultConfig())
	if err := db.CreateCollection("tweets"); err != nil {
		t.Fatal(err)
	}
	docs := mustDocs(t,
		`{"id":1,"text":"hi","user":{"id":100,"lang":"en","geo":{"city":"nyc"}}}`,
		`{"id":2,"text":"yo","user":{"id":200,"lang":"msa"}}`,
	)
	if _, err := db.LoadDocuments("tweets", docs); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(`SELECT "user.id" FROM tweets WHERE "user.lang" = 'msa'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].I != 200 {
		t.Fatalf("rows = %v", res.Rows)
	}
	// Deeply nested path.
	res, err = db.Query(`SELECT "user.geo.city" FROM tweets WHERE id = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].S != "nyc" {
		t.Errorf("city = %v", res.Rows[0][0])
	}
}

func TestMaterializationLifecycle(t *testing.T) {
	db := Open(Config{DensityThreshold: 0.6, CardinalityThreshold: 2})
	if err := db.CreateCollection("events"); err != nil {
		t.Fatal(err)
	}
	var docs []*jsonx.Doc
	for i := 0; i < 50; i++ {
		d := jsonx.NewDoc()
		d.Set("kind", jsonx.StringValue("k"+string(rune('a'+i%7))))
		d.Set("value", jsonx.IntValue(int64(i)))
		if i%10 == 0 {
			d.Set("rare", jsonx.StringValue("r"))
		}
		docs = append(docs, d)
	}
	if _, err := db.LoadDocuments("events", docs); err != nil {
		t.Fatal(err)
	}

	decisions, err := db.AnalyzeSchema("events")
	if err != nil {
		t.Fatal(err)
	}
	wantMat := map[string]bool{"kind": true, "value": true, "rare": false}
	for _, d := range decisions {
		if want, ok := wantMat[d.Key]; ok && d.Materialize != want {
			t.Errorf("decision for %s: materialize=%v, want %v (density=%.2f card=%d)",
				d.Key, d.Materialize, want, d.Density, d.Cardinality)
		}
	}

	m := NewMaterializer(db)
	moved, err := m.RunOnce("events")
	if err != nil {
		t.Fatal(err)
	}
	if moved != 100 { // kind + value for 50 docs
		t.Errorf("moved = %d, want 100", moved)
	}
	// Physical column exists now and the data is queryable.
	res, err := db.Query(`SELECT COUNT(*) FROM events WHERE kind = 'ka'`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != 8 {
		t.Errorf("count(ka) = %v, want 8", res.Rows[0][0])
	}
	// The rewrite now references the physical column, not extraction.
	sql, _ := db.RewrittenSQL(`SELECT kind FROM events`)
	if strings.Contains(sql, "sinew_extract") {
		t.Errorf("materialized column should not use extraction: %s", sql)
	}
	// Reservoir no longer holds the materialized keys.
	tc, _ := db.cat.Lookup("events")
	for _, c := range tc.Columns() {
		if c.Key == "kind" && c.Dirty {
			t.Error("kind should not be dirty after a full pass")
		}
	}
}

func TestDirtyColumnCoalesce(t *testing.T) {
	db := Open(Config{DensityThreshold: 0.5, CardinalityThreshold: 1})
	if err := db.CreateCollection("logs"); err != nil {
		t.Fatal(err)
	}
	firstBatch := mustDocs(t,
		`{"msg":"a","level":1}`, `{"msg":"b","level":2}`, `{"msg":"c","level":3}`,
	)
	if _, err := db.LoadDocuments("logs", firstBatch); err != nil {
		t.Fatal(err)
	}
	if _, err := db.AnalyzeSchema("logs"); err != nil {
		t.Fatal(err)
	}
	m := NewMaterializer(db)
	if _, err := m.RunOnce("logs"); err != nil {
		t.Fatal(err)
	}
	// Load more: values land in the reservoir, columns become dirty again.
	secondBatch := mustDocs(t, `{"msg":"d","level":4}`, `{"msg":"e","level":5}`)
	if _, err := db.LoadDocuments("logs", secondBatch); err != nil {
		t.Fatal(err)
	}
	sql, _ := db.RewrittenSQL(`SELECT msg FROM logs WHERE level = 4`)
	if !strings.Contains(sql, "coalesce") {
		t.Errorf("dirty column should COALESCE: %s", sql)
	}
	// Queries over the mixed state see all rows.
	res, err := db.Query(`SELECT COUNT(*) FROM logs WHERE level >= 1`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != 5 {
		t.Errorf("count = %v, want 5", res.Rows[0][0])
	}
	res, err = db.Query(`SELECT msg FROM logs WHERE level = 4`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].S != "d" {
		t.Errorf("rows = %v", res.Rows)
	}
	// Materialize the backlog; coalesce disappears.
	if _, err := m.RunOnce("logs"); err != nil {
		t.Fatal(err)
	}
	sql, _ = db.RewrittenSQL(`SELECT msg FROM logs`)
	if strings.Contains(sql, "coalesce") {
		t.Errorf("clean column should not COALESCE: %s", sql)
	}
}

func TestDematerialization(t *testing.T) {
	db := Open(Config{DensityThreshold: 0.6, CardinalityThreshold: 2})
	if err := db.CreateCollection("d"); err != nil {
		t.Fatal(err)
	}
	var docs []*jsonx.Doc
	for i := 0; i < 20; i++ {
		d := jsonx.NewDoc()
		d.Set("hot", jsonx.IntValue(int64(i)))
		docs = append(docs, d)
	}
	if _, err := db.LoadDocuments("d", docs); err != nil {
		t.Fatal(err)
	}
	if _, err := db.AnalyzeSchema("d"); err != nil {
		t.Fatal(err)
	}
	m := NewMaterializer(db)
	if _, err := m.RunOnce("d"); err != nil {
		t.Fatal(err)
	}
	// Now dilute density below threshold with docs lacking "hot".
	var more []*jsonx.Doc
	for i := 0; i < 30; i++ {
		d := jsonx.NewDoc()
		d.Set("other", jsonx.IntValue(int64(i)))
		more = append(more, d)
	}
	if _, err := db.LoadDocuments("d", more); err != nil {
		t.Fatal(err)
	}
	if _, err := db.AnalyzeSchema("d"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.RunOnce("d"); err != nil {
		t.Fatal(err)
	}
	// Column is gone from the physical schema but data still queryable.
	schema, err := db.rdb.TableSchema("d")
	if err != nil {
		t.Fatal(err)
	}
	if schema.ColumnIndex("hot") >= 0 {
		t.Error("hot should have been dematerialized and dropped")
	}
	res, err := db.Query(`SELECT COUNT(*) FROM d WHERE hot >= 0`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != 20 {
		t.Errorf("count = %v, want 20", res.Rows[0][0])
	}
}

func TestUpdateVirtualColumn(t *testing.T) {
	db := webDB(t)
	// The paper's Figure 8 update shape: both keys virtual.
	res, err := db.Query(`UPDATE webrequests SET owner = 'DUMMY' WHERE country = 'pl'`)
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsAffected != 1 {
		t.Fatalf("affected = %d", res.RowsAffected)
	}
	check, err := db.Query(`SELECT owner FROM webrequests WHERE country = 'pl'`)
	if err != nil {
		t.Fatal(err)
	}
	if check.Rows[0][0].S != "DUMMY" {
		t.Errorf("owner = %v", check.Rows[0][0])
	}
}

func TestUpdateMaterializedColumn(t *testing.T) {
	db := Open(Config{DensityThreshold: 0.5, CardinalityThreshold: 0})
	if err := db.CreateCollection("c"); err != nil {
		t.Fatal(err)
	}
	docs := mustDocs(t, `{"k":"x","v":1}`, `{"k":"y","v":2}`)
	if _, err := db.LoadDocuments("c", docs); err != nil {
		t.Fatal(err)
	}
	db.AnalyzeSchema("c")
	NewMaterializer(db).RunOnce("c")
	if _, err := db.Query(`UPDATE c SET k = 'z' WHERE v = 1`); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(`SELECT k FROM c WHERE v = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].S != "z" {
		t.Errorf("k = %v", res.Rows[0][0])
	}
}

func TestMultiTypedKey(t *testing.T) {
	db := Open(DefaultConfig())
	if err := db.CreateCollection("m"); err != nil {
		t.Fatal(err)
	}
	docs := mustDocs(t,
		`{"dyn1": 10, "id":1}`,
		`{"dyn1": "ten", "id":2}`,
		`{"dyn1": true, "id":3}`,
		`{"dyn1": 25, "id":4}`,
	)
	if _, err := db.LoadDocuments("m", docs); err != nil {
		t.Fatal(err)
	}
	// Numeric context selects only integer values; strings/bools are NULL,
	// never an error (unlike the Postgres JSON baseline).
	res, err := db.Query(`SELECT id FROM m WHERE dyn1 BETWEEN 5 AND 30`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	// Text context selects the string value.
	res, err = db.Query(`SELECT id FROM m WHERE dyn1 = 'ten'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].I != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	// Unconstrained projection downcasts to text.
	res, err = db.Query(`SELECT dyn1 FROM m WHERE id = 3`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].S != "true" {
		t.Errorf("dyn1 = %v", res.Rows[0][0])
	}
}

func TestArrayContainment(t *testing.T) {
	db := Open(DefaultConfig())
	if err := db.CreateCollection("a"); err != nil {
		t.Fatal(err)
	}
	docs := mustDocs(t,
		`{"id":1,"tags":["x","y"]}`,
		`{"id":2,"tags":["z"]}`,
	)
	if _, err := db.LoadDocuments("a", docs); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(`SELECT id FROM a WHERE 'y' IN tags`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].I != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestSelectStarLogicalView(t *testing.T) {
	db := webDB(t)
	res, err := db.Query(`SELECT * FROM webrequests WHERE hits = 22`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	// _id + document (no materialized columns yet).
	if res.Columns[0] != "_id" || res.Columns[len(res.Columns)-1] != "document" {
		t.Errorf("columns = %v", res.Columns)
	}
	docCol := res.Rows[0][len(res.Columns)-1]
	if !strings.Contains(docCol.S, `"url":"www.sample-site.com"`) {
		t.Errorf("document = %v", docCol)
	}
}

func TestJoinAcrossCollections(t *testing.T) {
	db := Open(DefaultConfig())
	db.CreateCollection("tweets")
	db.CreateCollection("deletes")
	tw := mustDocs(t,
		`{"id_str":"t1","user":{"lang":"msa","id":1}}`,
		`{"id_str":"t2","user":{"lang":"en","id":2}}`,
	)
	dl := mustDocs(t,
		`{"delete":{"status":{"id_str":"t1","user_id":1}}}`,
	)
	if _, err := db.LoadDocuments("tweets", tw); err != nil {
		t.Fatal(err)
	}
	if _, err := db.LoadDocuments("deletes", dl); err != nil {
		t.Fatal(err)
	}
	// Table 1 Q3's shape (two-table version).
	res, err := db.Query(`SELECT t1."user.id" FROM tweets t1, deletes d1 ` +
		`WHERE t1.id_str = d1."delete.status.id_str" AND t1."user.lang" = 'msa'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].I != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestTextSearch(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EnableTextIndex = true
	db := Open(cfg)
	db.CreateCollection("posts")
	docs := mustDocs(t,
		`{"id":1,"body":"the quick brown fox"}`,
		`{"id":2,"body":"lazy dogs sleep"}`,
		`{"id":3,"title":"quick start guide"}`,
	)
	if _, err := db.LoadDocuments("posts", docs); err != nil {
		t.Fatal(err)
	}
	// §4.3's sample query shape.
	res, err := db.Query(`SELECT id FROM posts WHERE matches('*', 'quick')`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	// Field-scoped search.
	res, err = db.Query(`SELECT id FROM posts WHERE matches('body', 'quick')`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].I != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestLoaderSetsDirtyOnNewData(t *testing.T) {
	db := Open(Config{DensityThreshold: 0.5, CardinalityThreshold: 0})
	db.CreateCollection("x")
	db.LoadDocuments("x", mustDocs(t, `{"a":1}`, `{"a":2}`))
	db.AnalyzeSchema("x")
	NewMaterializer(db).RunOnce("x")
	tc, _ := db.cat.Lookup("x")
	if len(tc.DirtyColumns()) != 0 {
		t.Fatal("no dirty columns expected after pass")
	}
	db.LoadDocuments("x", mustDocs(t, `{"a":3}`))
	if len(tc.DirtyColumns()) != 1 {
		t.Error("loading data for a materialized column must set its dirty bit")
	}
}

func TestMaterializerPauseResume(t *testing.T) {
	db := Open(Config{DensityThreshold: 0.5, CardinalityThreshold: 0})
	db.CreateCollection("p")
	var docs []*jsonx.Doc
	for i := 0; i < 200; i++ {
		d := jsonx.NewDoc()
		d.Set("v", jsonx.IntValue(int64(i)))
		docs = append(docs, d)
	}
	db.LoadDocuments("p", docs)
	db.AnalyzeSchema("p")
	m := NewMaterializer(db)
	m.Pause()
	moved, err := m.RunOnce("p")
	if err != nil {
		t.Fatal(err)
	}
	if moved != 0 {
		t.Fatalf("paused materializer moved %d values", moved)
	}
	// Queries still work against the fully-virtual dirty state.
	res, err := db.Query(`SELECT COUNT(*) FROM p WHERE v >= 100`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != 100 {
		t.Errorf("count = %v", res.Rows[0][0])
	}
	m.Resume()
	moved, err = m.RunOnce("p")
	if err != nil {
		t.Fatal(err)
	}
	if moved != 200 {
		t.Errorf("resumed materializer moved %d, want 200", moved)
	}
}
