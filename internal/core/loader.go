package core

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strings"

	"github.com/sinewdata/sinew/internal/jsonx"
	"github.com/sinewdata/sinew/internal/rdbms/storage"
	"github.com/sinewdata/sinew/internal/rdbms/types"
	"github.com/sinewdata/sinew/internal/serial"
	"github.com/sinewdata/sinew/internal/textindex"
)

// LoadResult summarizes a bulk load.
type LoadResult struct {
	Documents     int64
	NewAttributes int
	BytesStored   int64
}

// LoadJSONLines bulk-loads newline-delimited JSON documents (§3.2.1): each
// document is validated, serialized into Sinew's format, its attributes
// cataloged, and the row inserted with everything in the column reservoir
// regardless of the current physical schema. Any materialized column whose
// key appears in the batch is marked dirty for the materializer to pick up.
func (db *DB) LoadJSONLines(collection string, r io.Reader) (*LoadResult, error) {
	collection = strings.ToLower(collection)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	var docs []*jsonx.Doc
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		doc, err := jsonx.ParseDocument(raw)
		if err != nil {
			return nil, fmt.Errorf("core: line %d: %w", line, err)
		}
		docs = append(docs, doc)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return db.LoadDocuments(collection, docs)
}

// LoadDocuments bulk-loads parsed documents.
func (db *DB) LoadDocuments(collection string, docs []*jsonx.Doc) (*LoadResult, error) {
	collection = strings.ToLower(collection)
	tc, ok := db.cat.Lookup(collection)
	if !ok {
		return nil, fmt.Errorf("core: collection %q does not exist", collection)
	}
	schema, err := db.rdb.TableSchema(collection)
	if err != nil {
		return nil, err
	}
	opts := db.options(collection)
	dict := db.dict()
	attrsBefore := dict.Len()

	// The loader holds the catalog latch for the batch so the materializer
	// never runs concurrently (§3.1.4).
	tc.Latch()
	defer tc.Unlatch()

	firstID := tc.NextID(int64(len(docs)))
	rows := make([]storage.Row, 0, len(docs))
	var hashBuf []byte
	dirtied := map[uint32]bool{}
	var bytesStored int64
	splitPending := map[string][]*jsonx.Doc{}

	for i, doc := range docs {
		id := firstID + int64(i)
		// §4.2: configured nested objects go to their own sub-collection.
		if len(opts.SplitNested) > 0 {
			doc = db.splitNested(collection, id, doc, opts, splitPending)
		}
		// Serialization also allocates attribute IDs for new keys — the
		// only schema-evolution cost (§3.2.1).
		data, err := serial.Serialize(doc, dict)
		if err != nil {
			return nil, err
		}
		bytesStored += int64(len(data))

		// Catalog every flattened attribute (top-level and nested paths).
		for _, f := range jsonx.Flatten(doc) {
			at, typed := serial.AttrTypeOf(f.Val)
			if !typed {
				continue
			}
			attr := serial.Attr{ID: dict.IDFor(f.Path, at), Key: f.Path, Type: at}
			d, err := datumFromJSON(f.Val, dict)
			if err != nil {
				return nil, err
			}
			hashBuf = d.HashKey(hashBuf[:0])
			col := tc.recordObservation(attr, string(hashBuf))
			if col.Materialized {
				dirtied[attr.ID] = true
			}
		}

		// Array strategies beyond the default (§4.2).
		if len(opts.ArrayModes) > 0 {
			if err := db.applyArrayModes(collection, tc, id, doc, opts); err != nil {
				return nil, err
			}
		}

		// Build the physical row: _id, reservoir, NULL for every physical
		// column — the loader never touches the physical schema (§3.2.1).
		row := make(storage.Row, len(schema.Cols))
		for ci, c := range schema.Cols {
			row[ci] = types.NewNull(c.Typ)
		}
		row[schema.ColumnIndex(IDColumn)] = types.NewInt(id)
		row[schema.ColumnIndex(ReservoirColumn)] = types.NewBytes(data)
		rows = append(rows, row)

		if db.index != nil {
			db.indexDocument(id, doc)
		}
	}

	if err := db.rdb.InsertRows(collection, rows); err != nil {
		return nil, err
	}
	tc.addDocs(int64(len(docs)))
	for attrID := range dirtied {
		tc.setDirty(attrID, true)
	}
	if len(splitPending) > 0 {
		// Release this collection's latch before loading sub-collections
		// (they latch themselves).
		tc.Unlatch()
		err := db.ensureSplitCollections(splitPending)
		tc.Latch() // re-acquire for the deferred Unlatch
		if err != nil {
			return nil, err
		}
	}
	// New attributes or freshly dirtied columns change what the rewriter
	// emits for the same statement; drop cached plans.
	if dict.Len() != attrsBefore || len(dirtied) > 0 {
		db.rdb.BumpCatalogEpoch()
	}
	return &LoadResult{
		Documents:     int64(len(docs)),
		NewAttributes: dict.Len() - attrsBefore,
		BytesStored:   bytesStored,
	}, nil
}

// indexDocument adds every flattened text value to the inverted index,
// faceted by attribute (§4.3).
func (db *DB) indexDocument(id int64, doc *jsonx.Doc) {
	for _, f := range jsonx.Flatten(doc) {
		switch f.Val.Kind {
		case jsonx.String:
			db.index.Add(textindex.DocID(id), f.Path, f.Val.S)
		case jsonx.Array:
			for _, e := range f.Val.A {
				if e.Kind == jsonx.String {
					db.index.Add(textindex.DocID(id), f.Path, e.S)
				}
			}
		default:
			// Numbers, booleans, and nulls carry no searchable text;
			// objects were already flattened away by jsonx.Flatten.
		}
	}
}
