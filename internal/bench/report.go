package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"
	"time"

	"github.com/sinewdata/sinew/internal/core"
	"github.com/sinewdata/sinew/internal/nobench"
)

// This file produces the machine-readable benchmark report (`make bench`
// writes it to BENCH_PR2.json): per-query ns/op and allocs/op for the
// Sinew column of Figure 6, the Table 5 virtual-vs-physical pair, and the
// repeated-statement benchmark pinning the plan-cache hit path.

// QueryBench is one measured statement.
type QueryBench struct {
	Query       string `json:"query"`
	SQL         string `json:"sql"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
}

// Table5Bench pairs a query's virtual- and physical-column timings.
// CPUOverheadPct is the raw in-memory ratio; DiskOverheadPct applies the
// paper's disk-bound regime (DiskBoundIOModel), where the sequential scan
// reads the same pages either way and extraction CPU hides behind
// bandwidth — that is the number Appendix B's <5%/<2% claims refer to.
type Table5Bench struct {
	SQL             string  `json:"sql"`
	VirtualNsPerOp  int64   `json:"virtual_ns_per_op"`
	VirtualAllocs   int64   `json:"virtual_allocs_per_op"`
	PhysicalNsPerOp int64   `json:"physical_ns_per_op"`
	PhysicalAllocs  int64   `json:"physical_allocs_per_op"`
	CPUOverheadPct  float64 `json:"cpu_overhead_pct"`
	DiskOverheadPct float64 `json:"disk_overhead_pct"`
}

// PlanCacheBench compares the same statement with the prepared-plan cache
// hitting versus being forced to re-plan every execution.
type PlanCacheBench struct {
	SQL             string  `json:"sql"`
	CachedNsPerOp   int64   `json:"cached_ns_per_op"`
	CachedAllocs    int64   `json:"cached_allocs_per_op"`
	UncachedNsPerOp int64   `json:"uncached_ns_per_op"`
	UncachedAllocs  int64   `json:"uncached_allocs_per_op"`
	SpeedupX        float64 `json:"speedup_x"`
}

// table5ReportQueries extends the report's Table 5 section beyond the
// paper's three queries with a bounded ORDER BY, so the Top-N trajectory
// is tracked by the same regression gate. The experiment table (Table5)
// keeps the paper's exact query set.
func table5ReportQueries() []string {
	return append(Table5Queries(),
		`SELECT * FROM tweets ORDER BY "user.friends_count" DESC LIMIT 10`)
}

// Report is the full BENCH_PR2.json payload.
type Report struct {
	Records      int              `json:"records"`
	TwitterN     int              `json:"twitter_records"`
	Figure6Sinew []QueryBench     `json:"figure6_sinew"`
	Table5       []Table5Bench    `json:"table5"`
	PlanCache    []PlanCacheBench `json:"plan_cache"`
}

// benchQuery measures one statement as the minimum ns/op of five
// independent testing.Benchmark runs. Each run's window is ~1s; on a
// shared runner, noisy-neighbor stalls last whole seconds and poison a
// majority of windows, so a median still swings ±30% between invocations.
// Interference is strictly one-sided (contention only ever adds time), so
// the minimum is the stable estimator of what the query costs when the
// machine is available — the same statistic the Table 5 experiment uses —
// and five windows give it a chance to land in a quiet stretch. Allocs/op
// is deterministic and taken once.
func benchQuery(db *core.DB, sql string) (ns, allocs int64, err error) {
	if _, err = db.Query(sql); err != nil {
		return 0, 0, err
	}
	var inner error
	best := int64(0)
	for t := 0; t < 5; t++ {
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, e := db.Query(sql); e != nil {
					inner = e
					b.FailNow()
				}
			}
		})
		if inner != nil {
			return 0, 0, inner
		}
		if ns := r.NsPerOp(); best == 0 || ns < best {
			best = ns
		}
		if t == 0 {
			allocs = r.AllocsPerOp()
		}
	}
	return best, allocs, nil
}

// BuildReport loads the NoBench and Twitter fixtures at scale n and
// measures every report entry.
func BuildReport(n int, seed int64) (*Report, error) {
	rep := &Report{Records: n, TwitterN: n}

	f, err := SetupNoBench(n, seed, 0)
	if err != nil {
		return nil, err
	}
	queries := f.Par.Queries()
	for _, qid := range nobench.QueryOrder()[:10] {
		sql := queries[qid]
		ns, allocs, err := benchQuery(f.Sinew, sql)
		if err != nil {
			// Per-query DNFs (if any) are reported, not fatal.
			rep.Figure6Sinew = append(rep.Figure6Sinew, QueryBench{Query: qid, SQL: sql})
			continue
		}
		rep.Figure6Sinew = append(rep.Figure6Sinew,
			QueryBench{Query: qid, SQL: sql, NsPerOp: ns, AllocsPerOp: allocs})
	}

	// Plan cache: the cheapest Figure 6 query is where fixed per-statement
	// costs (parse + rewrite + plan) weigh most; compare cache hits with a
	// forced re-plan per execution.
	for _, qid := range []string{"Q1", "Q3"} {
		sql := queries[qid]
		cachedNs, cachedAllocs, err := benchQuery(f.Sinew, sql)
		if err != nil {
			return nil, err
		}
		rdb := f.Sinew.RDBMS()
		var inner error
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rdb.BumpCatalogEpoch() // invalidate: every execution re-plans
				if _, e := f.Sinew.Query(sql); e != nil {
					inner = e
					b.FailNow()
				}
			}
		})
		if inner != nil {
			return nil, inner
		}
		pc := PlanCacheBench{
			SQL:             sql,
			CachedNsPerOp:   cachedNs,
			CachedAllocs:    cachedAllocs,
			UncachedNsPerOp: r.NsPerOp(),
			UncachedAllocs:  r.AllocsPerOp(),
		}
		if cachedNs > 0 {
			pc.SpeedupX = float64(r.NsPerOp()) / float64(cachedNs)
		}
		rep.PlanCache = append(rep.PlanCache, pc)
	}

	// Table 5: virtual first, then materialize the referenced keys and
	// measure again (same sequence as the Table5 experiment).
	tw, err := SetupTwitter(n, 5)
	if err != nil {
		return nil, err
	}
	// Freeze page statistics before the virtual leg: the physical leg below
	// re-analyzes after materializing, so without this the virtual side runs
	// un-striped scans and the comparison conflates column layout with
	// statistics freshness.
	if err := tw.Sinew.RDBMS().Analyze("tweets"); err != nil {
		return nil, err
	}
	t5Queries := table5ReportQueries()
	t5 := make([]Table5Bench, 0, len(t5Queries))
	virtBytes := tw.Sinew.DatabaseSizeBytes()
	for _, sql := range t5Queries {
		ns, allocs, err := benchQuery(tw.Sinew, sql)
		if err != nil {
			return nil, fmt.Errorf("table5 virtual %q: %w", sql, err)
		}
		t5 = append(t5, Table5Bench{SQL: sql, VirtualNsPerOp: ns, VirtualAllocs: allocs})
	}
	mat := core.NewMaterializer(tw.Sinew)
	for _, key := range []string{"user.id", "user.lang", "user.friends_count"} {
		if err := tw.Sinew.SetMaterialized("tweets", key, true); err != nil {
			return nil, err
		}
	}
	if _, err := mat.RunOnce("tweets"); err != nil {
		return nil, err
	}
	if err := tw.Sinew.RDBMS().Analyze("tweets"); err != nil {
		return nil, err
	}
	physBytes := tw.Sinew.DatabaseSizeBytes()
	for i, sql := range t5Queries {
		ns, allocs, err := benchQuery(tw.Sinew, sql)
		if err != nil {
			return nil, fmt.Errorf("table5 physical %q: %w", sql, err)
		}
		t5[i].PhysicalNsPerOp = ns
		t5[i].PhysicalAllocs = allocs
		if ns > 0 {
			t5[i].CPUOverheadPct = (float64(t5[i].VirtualNsPerOp)/float64(ns) - 1) * 100
		}
		// Disk-bound regime: a seq scan reads every page whether the key is
		// extracted or column-read, so both sides pay the same bandwidth and
		// the extraction CPU hides behind it (Appendix B's setting).
		vEff := DiskBoundIOModel(virtBytes).
			Effective(time.Duration(t5[i].VirtualNsPerOp), virtBytes, virtBytes)
		pEff := DiskBoundIOModel(physBytes).
			Effective(time.Duration(ns), physBytes, physBytes)
		if pEff > 0 {
			t5[i].DiskOverheadPct = (float64(vEff)/float64(pEff) - 1) * 100
		}
	}
	rep.Table5 = t5
	return rep, nil
}

// WriteReport builds the report and writes it as indented JSON.
func WriteReport(path string, n int, seed int64) (*Report, error) {
	rep, err := BuildReport(n, seed)
	if err != nil {
		return nil, err
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	return rep, os.WriteFile(path, append(buf, '\n'), 0o644)
}
