package bench

import (
	"fmt"
	"time"

	"github.com/sinewdata/sinew/internal/docstore"
	"github.com/sinewdata/sinew/internal/eav"
	"github.com/sinewdata/sinew/internal/jsonx"
	"github.com/sinewdata/sinew/internal/rdbms/types"
)

// RunQuery executes one NoBench query (Q1..Q12) on one system and returns
// the measured outcome. Errors that reproduce the paper's DNFs (pgjson Q7
// type error, Mongo Q11 scratch exhaustion) come back in Outcome.Err.
func (f *NoBenchFixture) RunQuery(system, qid string) Outcome {
	switch system {
	case SysSinew:
		return f.runSinew(qid)
	case SysPG:
		return f.runPG(qid)
	case SysEAV:
		return f.runEAV(qid)
	case SysMongo:
		return f.runMongo(qid)
	default:
		return Outcome{Err: fmt.Errorf("bench: unknown system %q", system)}
	}
}

func (f *NoBenchFixture) runSinew(qid string) Outcome {
	sql := f.Par.Queries()[qid]
	pager := f.Sinew.RDBMS().Pager()
	pager.Reset()
	start := time.Now()
	res, err := f.Sinew.Query(sql)
	cpu := time.Since(start)
	read, _ := pager.Stats()
	out := Outcome{CPU: cpu, BytesRead: read, Err: err}
	if err == nil {
		out.Rows = int64(len(res.Rows))
		if res.RowsAffected > 0 {
			out.Rows = res.RowsAffected
		}
	}
	return out
}

func (f *NoBenchFixture) runPG(qid string) Outcome {
	sql := f.Par.Queries()[qid]
	if qid == "Q11" {
		// The pgjson table has only the raw data column to project.
		lo, hi := f.Par.RangeBounds()
		sql = fmt.Sprintf(
			`SELECT l.data FROM %s l, %s r WHERE l."nested_obj.str" = r.str1 AND l.num BETWEEN %d AND %d`,
			f.Par.Table, f.Par.Table, lo, hi)
	}
	pager := f.PG.RDBMS().Pager()
	pager.Reset()
	start := time.Now()
	res, err := f.PG.Query(sql)
	cpu := time.Since(start)
	read, _ := pager.Stats()
	out := Outcome{CPU: cpu, BytesRead: read, Err: err}
	if err == nil {
		out.Rows = int64(len(res.Rows))
		if res.RowsAffected > 0 {
			out.Rows = res.RowsAffected
		}
	}
	return out
}

func (f *NoBenchFixture) runEAV(qid string) Outcome {
	par := f.Par
	table := par.Table
	lo, hi := par.RangeBounds()
	dlo, dhi := par.DynBounds()
	pager := f.EAV.RDBMS().Pager()
	pager.Reset()
	start := time.Now()
	var rows int64
	var err error
	switch qid {
	case "Q1":
		res, e := f.EAV.ProjectKeys(table, "str1", "num")
		err = e
		if e == nil {
			rows = int64(len(res.Rows))
		}
	case "Q2":
		res, e := f.EAV.ProjectKeys(table, "nested_obj.str", "nested_obj.num")
		err = e
		if e == nil {
			rows = int64(len(res.Rows))
		}
	case "Q3":
		res, e := f.EAV.ProjectKeys(table, "sparse_110", "sparse_119")
		err = e
		if e == nil {
			rows = int64(len(res.Rows))
		}
	case "Q4":
		res, e := f.EAV.ProjectKeys(table, "sparse_110", "sparse_220")
		err = e
		if e == nil {
			rows = int64(len(res.Rows))
		}
	case "Q5":
		res, e := f.EAV.SelectEq(table, "str1", types.NewText(par.Str1Probe()))
		err = e
		if e == nil {
			rows = eav.ReconstructObjects(res, 0)
		}
	case "Q6":
		res, e := f.EAV.SelectRange(table, "num", float64(lo), float64(hi))
		err = e
		if e == nil {
			rows = eav.ReconstructObjects(res, 0)
		}
	case "Q7":
		res, e := f.EAV.SelectRange(table, "dyn1", float64(dlo), float64(dhi))
		err = e
		if e == nil {
			rows = eav.ReconstructObjects(res, 0)
		}
	case "Q8":
		res, e := f.EAV.SelectArrayContains(table, "nested_arr", types.NewText(par.ArrayProbe()))
		err = e
		if e == nil {
			rows = eav.ReconstructObjects(res, 0)
		}
	case "Q9":
		res, e := f.EAV.SelectEq(table, par.SparseQueryKey(), types.NewText(par.SparseProbe()))
		err = e
		if e == nil {
			rows = eav.ReconstructObjects(res, 0)
		}
	case "Q10":
		res, e := f.EAV.GroupCount(table, "num", float64(lo), float64(hi), "thousandth")
		err = e
		if e == nil {
			rows = int64(len(res.Rows))
		}
	case "Q11":
		res, e := f.EAV.Join(table, "nested_obj.str", "str1", "num", float64(lo), float64(hi))
		err = e
		if e == nil {
			rows = int64(len(res.Rows))
		}
	case "Q12":
		n, e := f.EAV.UpdateEq(table, par.SparseSetKey(), types.NewText("DUMMY"),
			par.SparseQueryKey(), types.NewText(par.SparseProbe()))
		err = e
		rows = n
	default:
		err = fmt.Errorf("bench: unknown query %q", qid)
	}
	cpu := time.Since(start)
	read, _ := pager.Stats()
	return Outcome{CPU: cpu, BytesRead: read, Rows: rows, Err: err}
}

func (f *NoBenchFixture) runMongo(qid string) Outcome {
	par := f.Par
	lo, hi := par.RangeBounds()
	dlo, dhi := par.DynBounds()
	coll := f.MongoColl
	f.Mongo.ResetIO()
	start := time.Now()
	var rows int64
	var err error
	switch qid {
	case "Q1":
		res, e := coll.Find(docstore.All{}, []string{"str1", "num"})
		err = e
		rows = int64(len(res))
	case "Q2":
		res, e := coll.Find(docstore.All{}, []string{"nested_obj.str", "nested_obj.num"})
		err = e
		rows = int64(len(res))
	case "Q3":
		res, e := coll.Find(docstore.All{}, []string{"sparse_110", "sparse_119"})
		err = e
		rows = int64(len(res))
	case "Q4":
		res, e := coll.Find(docstore.All{}, []string{"sparse_110", "sparse_220"})
		err = e
		rows = int64(len(res))
	case "Q5":
		res, e := coll.Find(docstore.Eq{Path: "str1", Val: jsonx.StringValue(par.Str1Probe())}, nil)
		err = e
		rows = int64(len(res))
	case "Q6":
		res, e := coll.Find(docstore.Range{Path: "num", Lo: float64(lo), Hi: float64(hi)}, nil)
		err = e
		rows = int64(len(res))
	case "Q7":
		res, e := coll.Find(docstore.Range{Path: "dyn1", Lo: float64(dlo), Hi: float64(dhi)}, nil)
		err = e
		rows = int64(len(res))
	case "Q8":
		res, e := coll.Find(docstore.Contains{Path: "nested_arr", Val: jsonx.StringValue(par.ArrayProbe())}, nil)
		err = e
		rows = int64(len(res))
	case "Q9":
		res, e := coll.Find(docstore.Eq{Path: par.SparseQueryKey(), Val: jsonx.StringValue(par.SparseProbe())}, nil)
		err = e
		rows = int64(len(res))
	case "Q10":
		groups, e := coll.GroupSum(docstore.Range{Path: "num", Lo: float64(lo), Hi: float64(hi)}, "thousandth", "")
		err = e
		rows = int64(len(groups))
	case "Q11":
		out, e := f.Mongo.JoinViaTemp(coll, coll, "nested_obj.str", "str1",
			docstore.Range{Path: "num", Lo: float64(lo), Hi: float64(hi)})
		err = e
		if e == nil {
			rows = out.Count()
			f.Mongo.Drop(out.Name())
		}
	case "Q12":
		n, e := coll.UpdateSet(
			docstore.Eq{Path: par.SparseQueryKey(), Val: jsonx.StringValue(par.SparseProbe())},
			par.SparseSetKey(), jsonx.StringValue("DUMMY"))
		err = e
		rows = n
	default:
		err = fmt.Errorf("bench: unknown query %q", qid)
	}
	cpu := time.Since(start)
	return Outcome{CPU: cpu, BytesRead: f.Mongo.BytesRead(), Rows: rows, Err: err}
}
