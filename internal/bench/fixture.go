package bench

import (
	"fmt"
	"time"

	"github.com/sinewdata/sinew/internal/core"
	"github.com/sinewdata/sinew/internal/docstore"
	"github.com/sinewdata/sinew/internal/eav"
	"github.com/sinewdata/sinew/internal/jsonx"
	"github.com/sinewdata/sinew/internal/nobench"
	"github.com/sinewdata/sinew/internal/pgjson"
)

// PaperMaterializedKeys is the §6.1 materialization outcome: "str1, num,
// nested_array, nested_object (itself a serialized data column), and
// thousandth"; the other keys (dynamic and sparse included) stay virtual.
var PaperMaterializedKeys = []string{"str1", "num", "nested_arr", "nested_obj", "thousandth"}

// NoBenchFixture holds the four benchmarked systems loaded with one
// NoBench dataset.
type NoBenchFixture struct {
	N   int
	Par nobench.Params

	Sinew     *core.DB
	Mongo     *docstore.Store
	MongoColl *docstore.Collection
	EAV       *eav.DB
	PG        *pgjson.DB

	// LoadTime and SizeBytes index by system name (Table 3).
	LoadTime  map[string]time.Duration
	SizeBytes map[string]int64
	// OriginalBytes is the raw JSON input size (Table 3's last row).
	OriginalBytes int64
}

// SetupNoBench generates n records and loads all four systems, recording
// load times and storage sizes. scratchBudget caps MongoDB's intermediate
// collections (0 = unlimited); the paper's 40 GB runs exhausted disk, which
// the Figure 7 experiment reproduces by budgeting scratch space.
func SetupNoBench(n int, seed int64, scratchBudget int64) (*NoBenchFixture, error) {
	f := &NoBenchFixture{
		N:         n,
		Par:       nobench.NewParams(n),
		LoadTime:  make(map[string]time.Duration),
		SizeBytes: make(map[string]int64),
	}
	docs := nobench.Generate(n, seed)
	jsonLines := make([]string, len(docs))
	for i, d := range docs {
		jsonLines[i] = jsonx.ObjectValue(d).String()
		f.OriginalBytes += int64(len(jsonLines[i])) + 1
	}
	table := f.Par.Table

	// --- Sinew ---
	f.Sinew = core.Open(core.DefaultConfig())
	if err := f.Sinew.CreateCollection(table); err != nil {
		return nil, err
	}
	start := time.Now()
	if _, err := f.Sinew.LoadDocuments(table, docs); err != nil {
		return nil, fmt.Errorf("bench: sinew load: %w", err)
	}
	f.LoadTime[SysSinew] = time.Since(start)
	// Pin the paper's materialization outcome, run the materializer to
	// completion, and refresh optimizer statistics.
	for _, key := range PaperMaterializedKeys {
		if err := f.Sinew.SetMaterialized(table, key, true); err != nil {
			return nil, err
		}
	}
	if _, err := core.NewMaterializer(f.Sinew).RunOnce(table); err != nil {
		return nil, fmt.Errorf("bench: sinew materialize: %w", err)
	}
	if err := f.Sinew.RDBMS().Analyze(table); err != nil {
		return nil, err
	}
	f.SizeBytes[SysSinew] = f.Sinew.DatabaseSizeBytes()

	// --- MongoDB stand-in ---
	f.Mongo = docstore.Open()
	f.Mongo.ScratchBudget = scratchBudget
	f.MongoColl = f.Mongo.Create(table)
	start = time.Now()
	for _, d := range docs {
		if _, err := f.MongoColl.Insert(cloneDoc(d)); err != nil {
			return nil, fmt.Errorf("bench: mongo load: %w", err)
		}
	}
	f.LoadTime[SysMongo] = time.Since(start)
	f.SizeBytes[SysMongo] = f.Mongo.TotalSizeBytes()

	// --- EAV ---
	f.EAV = eav.Open()
	if err := f.EAV.CreateCollection(table); err != nil {
		return nil, err
	}
	start = time.Now()
	if _, err := f.EAV.LoadDocuments(table, docs); err != nil {
		return nil, fmt.Errorf("bench: eav load: %w", err)
	}
	f.LoadTime[SysEAV] = time.Since(start)
	if err := f.EAV.Analyze(table); err != nil {
		return nil, err
	}
	f.SizeBytes[SysEAV] = f.EAV.SizeBytes(table)

	// --- Postgres JSON ---
	f.PG = pgjson.Open()
	if err := f.PG.CreateCollection(table); err != nil {
		return nil, err
	}
	start = time.Now()
	if err := f.PG.LoadJSON(table, jsonLines); err != nil {
		return nil, fmt.Errorf("bench: pgjson load: %w", err)
	}
	f.LoadTime[SysPG] = time.Since(start)
	f.SizeBytes[SysPG] = f.PG.RDBMS().TotalSizeBytes()

	return f, nil
}

// cloneDoc copies a document so Mongo's _id insertion does not mutate the
// shared generated docs.
func cloneDoc(d *jsonx.Doc) *jsonx.Doc {
	out := jsonx.NewDoc()
	for _, m := range d.Members() {
		out.Set(m.Key, m.Val)
	}
	return out
}

// DatasetBytes returns the stored dataset size for a system (the I/O
// model's dataset parameter).
func (f *NoBenchFixture) DatasetBytes(system string) int64 { return f.SizeBytes[system] }
