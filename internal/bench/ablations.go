package bench

import (
	"fmt"
	"time"

	"github.com/sinewdata/sinew/internal/core"
	"github.com/sinewdata/sinew/internal/jsonx"
	"github.com/sinewdata/sinew/internal/nobench"
	"github.com/sinewdata/sinew/internal/serial"
)

// AblationHybrid compares the three schema extremes of §3.1.1 on the same
// NoBench data: all-virtual (everything in the reservoir), the paper's
// hybrid set, and all-physical (every key, sparse included, gets a
// column). It reports storage and the times of a dense projection (Q1), an
// equality selection (Q5), and a sparse selection (Q9).
func AblationHybrid(n int, seed int64) (*Table, error) {
	type variant struct {
		name string
		keys func(db *core.DB, table string) []string
	}
	variants := []variant{
		{"all-virtual", func(*core.DB, string) []string { return nil }},
		{"hybrid (paper)", func(*core.DB, string) []string { return PaperMaterializedKeys }},
		{"all-physical", func(db *core.DB, table string) []string {
			var keys []string
			tc, _ := db.Catalog().Lookup(table)
			seen := map[string]bool{}
			for _, c := range tc.Columns() {
				if seen[c.Key] {
					continue
				}
				seen[c.Key] = true
				keys = append(keys, c.Key)
			}
			return keys
		}},
	}
	t := &Table{
		Title:  fmt.Sprintf("Ablation — hybrid schema vs extremes (%d records, seconds)", n),
		Header: []string{"Schema", "Size", "Q1 project", "Q5 select", "Q9 sparse"},
	}
	docs := nobench.Generate(n, seed)
	par := nobench.NewParams(n)
	queries := par.Queries()
	for _, v := range variants {
		db := core.Open(core.DefaultConfig())
		if err := db.CreateCollection(par.Table); err != nil {
			return nil, err
		}
		if _, err := db.LoadDocuments(par.Table, docs); err != nil {
			return nil, err
		}
		for _, key := range v.keys(db, par.Table) {
			if err := db.SetMaterialized(par.Table, key, true); err != nil {
				return nil, err
			}
		}
		if _, err := core.NewMaterializer(db).RunOnce(par.Table); err != nil {
			return nil, err
		}
		if err := db.RDBMS().Analyze(par.Table); err != nil {
			return nil, err
		}
		row := []string{v.name, fmtBytes(db.DatabaseSizeBytes())}
		for _, qid := range []string{"Q1", "Q5", "Q9"} {
			start := time.Now()
			if _, err := db.Query(queries[qid]); err != nil {
				return nil, fmt.Errorf("bench: %s %s: %w", v.name, qid, err)
			}
			row = append(row, fmtDur(time.Since(start)))
		}
		t.AddRow(row...)
	}
	t.AddNote("all-physical pays per-row null bitmaps for ~%d mostly-NULL columns (§3.1.1's storage bloat)", nobench.SparsePool)
	return t, nil
}

// AblationDirtyCoalesce measures the §3.1.4 claim that queries over dirty
// (partially materialized) columns slow down by at most ~10%: the same
// selection runs against a clean materialized column and against the same
// column mid-materialization.
func AblationDirtyCoalesce(n int, seed int64, reps int) (*Table, error) {
	if reps < 1 {
		reps = 1
	}
	par := nobench.NewParams(n)
	docs := nobench.Generate(n, seed)
	q := par.Queries()["Q6"] // range over num

	timeIt := func(db *core.DB) (time.Duration, error) {
		var total time.Duration
		for i := 0; i < reps; i++ {
			start := time.Now()
			if _, err := db.Query(q); err != nil {
				return 0, err
			}
			total += time.Since(start)
		}
		return total / time.Duration(reps), nil
	}

	build := func(dirty bool) (time.Duration, error) {
		db := core.Open(core.DefaultConfig())
		if err := db.CreateCollection(par.Table); err != nil {
			return 0, err
		}
		// Materialize over the first 90%, then load a fresh 10% batch —
		// the steady-state shape: a recent load makes the column dirty.
		split := len(docs) * 9 / 10
		if _, err := db.LoadDocuments(par.Table, docs[:split]); err != nil {
			return 0, err
		}
		if err := db.SetMaterialized(par.Table, "num", true); err != nil {
			return 0, err
		}
		if _, err := core.NewMaterializer(db).RunOnce(par.Table); err != nil {
			return 0, err
		}
		// Load the second half; the column is now dirty. For the clean
		// variant, materialize the backlog before measuring.
		if _, err := db.LoadDocuments(par.Table, docs[split:]); err != nil {
			return 0, err
		}
		if !dirty {
			if _, err := core.NewMaterializer(db).RunOnce(par.Table); err != nil {
				return 0, err
			}
		}
		if err := db.RDBMS().Analyze(par.Table); err != nil {
			return 0, err
		}
		return timeIt(db)
	}

	clean, err := build(false)
	if err != nil {
		return nil, err
	}
	dirty, err := build(true)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  fmt.Sprintf("Ablation — dirty-column COALESCE overhead (%d records)", n),
		Header: []string{"State", "Q6 time (s)", "Overhead"},
	}
	t.AddRow("clean column", fmtDur(clean), "-")
	over := "-"
	if clean > 0 {
		over = fmt.Sprintf("%+.1f%%", (float64(dirty)/float64(clean)-1)*100)
	}
	t.AddRow("dirty column", fmtDur(dirty), over)
	t.AddNote("10%% of values sit in the reservoir; the paper observed at most 10%% slowdown (§3.1.4) — overhead scales with the unmaterialized fraction")
	return t, nil
}

// AblationPolicy sweeps the §3.1.3 materialization thresholds and reports
// how many columns each policy materializes plus projection/sparse query
// times.
func AblationPolicy(n int, seed int64) (*Table, error) {
	par := nobench.NewParams(n)
	docs := nobench.Generate(n, seed)
	queries := par.Queries()
	type policy struct {
		density float64
		card    int64
	}
	policies := []policy{
		{0.9, 10000}, {0.6, 200}, {0.3, 200}, {0.01, 0},
	}
	t := &Table{
		Title:  fmt.Sprintf("Ablation — materialization policy sweep (%d records)", n),
		Header: []string{"Density ≥", "Cardinality >", "Materialized", "Size", "Q1 (s)", "Q9 (s)"},
	}
	for _, p := range policies {
		db := core.Open(core.Config{DensityThreshold: p.density, CardinalityThreshold: p.card})
		if err := db.CreateCollection(par.Table); err != nil {
			return nil, err
		}
		if _, err := db.LoadDocuments(par.Table, docs); err != nil {
			return nil, err
		}
		decisions, err := db.AnalyzeSchema(par.Table)
		if err != nil {
			return nil, err
		}
		materialized := 0
		for _, d := range decisions {
			if d.Materialize {
				materialized++
			}
		}
		if _, err := core.NewMaterializer(db).RunOnce(par.Table); err != nil {
			return nil, err
		}
		if err := db.RDBMS().Analyze(par.Table); err != nil {
			return nil, err
		}
		row := []string{
			fmt.Sprintf("%.2f", p.density), fmt.Sprintf("%d", p.card),
			fmt.Sprintf("%d cols", materialized), fmtBytes(db.DatabaseSizeBytes()),
		}
		for _, qid := range []string{"Q1", "Q9"} {
			start := time.Now()
			if _, err := db.Query(queries[qid]); err != nil {
				return nil, err
			}
			row = append(row, fmtDur(time.Since(start)))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// AblationBinarySearch isolates §4.1's header design: key location by
// binary search over the sorted attribute-ID list vs a linear scan of the
// same header, at two record widths — NoBench's ~16 attributes and a wide
// Twitter-like 160 attributes, where the asymptotic gap shows.
func AblationBinarySearch(n int, seed int64) (*Table, error) {
	t := &Table{
		Title:  fmt.Sprintf("Ablation — header binary search vs linear scan (%d records)", n),
		Header: []string{"Record shape", "Binary search (s)", "Linear scan (s)"},
	}
	shapes := []struct {
		name  string
		attrs int
	}{
		{"~16 attributes (NoBench)", 0},
		{"160 attributes (wide)", 160},
	}
	for _, shape := range shapes {
		dict := serial.NewDictionary()
		var encoded [][]byte
		var probeID uint32
		if shape.attrs == 0 {
			docs := nobench.Generate(n, seed)
			for _, d := range docs {
				b, err := serial.Serialize(d, dict)
				if err != nil {
					return nil, err
				}
				encoded = append(encoded, b)
			}
			id, ok := dict.IDOf("thousandth", serial.TypeInt)
			if !ok {
				return nil, fmt.Errorf("bench: thousandth not in dictionary")
			}
			probeID = id
		} else {
			for i := 0; i < n; i++ {
				d := jsonx.NewDoc()
				for a := 0; a < shape.attrs; a++ {
					d.Set(fmt.Sprintf("attr_%03d", a), jsonx.IntValue(int64(i+a)))
				}
				b, err := serial.Serialize(d, dict)
				if err != nil {
					return nil, err
				}
				encoded = append(encoded, b)
			}
			// Probe the last attribute: the linear scan's worst case.
			id, _ := dict.IDOf(fmt.Sprintf("attr_%03d", shape.attrs-1), serial.TypeInt)
			probeID = id
		}

		start := time.Now()
		for _, b := range encoded {
			if _, _, err := serial.ExtractByID(b, probeID, dict); err != nil {
				return nil, err
			}
		}
		binarySearch := time.Since(start)

		start = time.Now()
		for _, b := range encoded {
			if _, _, err := serial.ExtractByIDLinear(b, probeID, dict); err != nil {
				return nil, err
			}
		}
		linear := time.Since(start)
		t.AddRow(shape.name, fmtDur(binarySearch), fmtDur(linear))
	}
	t.AddNote("both searches touch only the contiguous ID block of the header (the cache-locality design of §4.1)")
	return t, nil
}

// AblationArrays compares §4.2's array strategies on a containment query:
// the default array datum (extraction + = ANY) vs shredding elements into a
// separate table probed with SQL.
func AblationArrays(n int, seed int64) (*Table, error) {
	par := nobench.NewParams(n)
	docs := nobench.Generate(n, seed)
	probe := par.ArrayProbe()

	// Default: array datum in the reservoir.
	dbDefault := core.Open(core.DefaultConfig())
	if err := dbDefault.CreateCollection(par.Table); err != nil {
		return nil, err
	}
	if _, err := dbDefault.LoadDocuments(par.Table, docs); err != nil {
		return nil, err
	}
	start := time.Now()
	resDefault, err := dbDefault.Query(fmt.Sprintf(
		`SELECT _id FROM %s WHERE '%s' IN nested_arr`, par.Table, probe))
	if err != nil {
		return nil, err
	}
	defaultTime := time.Since(start)

	// Separate element table.
	dbShred := core.Open(core.DefaultConfig())
	if err := dbShred.CreateCollection(par.Table, core.CollectionOptions{
		ArrayModes: map[string]core.ArrayMode{"nested_arr": core.ArraySeparateTable},
	}); err != nil {
		return nil, err
	}
	if _, err := dbShred.LoadDocuments(par.Table, docs); err != nil {
		return nil, err
	}
	elems := core.ArrayTableName(par.Table, "nested_arr")
	if err := dbShred.RDBMS().Analyze(elems); err != nil {
		return nil, err
	}
	start = time.Now()
	resShred, err := dbShred.RDBMS().Query(fmt.Sprintf(
		`SELECT DISTINCT parent_id FROM %s WHERE elem_text = '%s'`, elems, probe))
	if err != nil {
		return nil, err
	}
	shredTime := time.Since(start)

	if len(resDefault.Rows) != len(resShred.Rows) {
		return nil, fmt.Errorf("bench: array strategies disagree: %d vs %d rows",
			len(resDefault.Rows), len(resShred.Rows))
	}
	t := &Table{
		Title:  fmt.Sprintf("Ablation — array storage strategies (%d records, containment query)", n),
		Header: []string{"Strategy", "Time (s)", "Matches"},
	}
	t.AddRow("array datum + = ANY", fmtDur(defaultTime), fmt.Sprintf("%d", len(resDefault.Rows)))
	t.AddRow("separate element table", fmtDur(shredTime), fmt.Sprintf("%d", len(resShred.Rows)))
	t.AddNote("the element table additionally gives the optimizer aggregate statistics over elements (§4.2)")
	return t, nil
}
