package bench

import (
	"errors"
	"fmt"
	"time"

	"github.com/sinewdata/sinew/internal/docstore"
	"github.com/sinewdata/sinew/internal/nobench"
)

// Table3 reproduces "Table 3: Load Time and Storage Size".
func Table3(f *NoBenchFixture) *Table {
	t := &Table{
		Title:  fmt.Sprintf("Table 3 — Load time and storage size (%d records)", f.N),
		Header: []string{"System", "Load (s)", "Size"},
	}
	for _, sys := range SystemOrder() {
		t.AddRow(sys, fmtDur(f.LoadTime[sys]), fmtBytes(f.SizeBytes[sys]))
	}
	t.AddRow("Original", "-", fmtBytes(f.OriginalBytes))
	t.AddNote("EAV stores %d triples for %d records", f.EAV.TripleCount(f.Par.Table), f.N)
	return t
}

// Figure6 reproduces "Figure 6: NoBench Query Performance (Q1-Q10)" for
// one scale; io selects the warm-cache (small) or disk-bound (large)
// regime.
func Figure6(f *NoBenchFixture, io IOModel, reps int) *Table {
	if reps < 1 {
		reps = 1
	}
	t := &Table{
		Title:  fmt.Sprintf("Figure 6 — NoBench Q1–Q10 execution time in seconds (%d records)", f.N),
		Header: append([]string{"Query"}, SystemOrder()...),
	}
	for _, qid := range nobench.QueryOrder()[:10] {
		row := []string{qid}
		for _, sys := range SystemOrder() {
			row = append(row, runCell(f, sys, qid, io, reps))
		}
		t.AddRow(row...)
	}
	t.AddNote("PG JSON Q7 fails by design: CAST of a multi-typed key raises a runtime type error (§6.4)")
	if io.MemoryBytes > 0 {
		t.AddNote("disk-bound regime: full-scan queries floor at bytes/bandwidth, so scan-bound systems show flat per-query times while CPU-bound systems (PG JSON) still vary")
	}
	return t
}

// runCell measures one (system, query) cell, averaging reps runs.
func runCell(f *NoBenchFixture, sys, qid string, io IOModel, reps int) string {
	var total time.Duration
	for i := 0; i < reps; i++ {
		o := f.RunQuery(sys, qid)
		if o.Err != nil {
			if errors.Is(o.Err, docstore.ErrScratchExhausted) {
				return "DNF(disk)"
			}
			return "ERROR(type)"
		}
		total += o.Effective(io, f.DatasetBytes(sys))
	}
	return fmtDur(total / time.Duration(reps))
}

// Figure7 reproduces "Figure 7: Join (NoBench Q11) Performance".
func Figure7(f *NoBenchFixture, io IOModel, reps int) *Table {
	t := &Table{
		Title:  fmt.Sprintf("Figure 7 — NoBench Q11 join time in seconds (%d records)", f.N),
		Header: append([]string{"Query"}, SystemOrder()...),
	}
	row := []string{"Q11"}
	for _, sys := range SystemOrder() {
		row = append(row, runCell(f, sys, "Q11", io, reps))
	}
	t.AddRow(row...)
	t.AddNote("MongoDB joins client-side via intermediate collections; a scratch budget reproduces the paper's out-of-disk DNF at large scale")
	return t
}

// Figure8 reproduces "Figure 8: Random Update Performance" (§6.6). Updates
// mutate state, so each rep operates on freshly matched rows; the
// per-query predicate work dominates, as in the paper.
func Figure8(f *NoBenchFixture, io IOModel, reps int) *Table {
	t := &Table{
		Title:  fmt.Sprintf("Figure 8 — Random update time in seconds (%d records)", f.N),
		Header: append([]string{"Task"}, SystemOrder()...),
	}
	row := []string{"UPDATE sparse"}
	for _, sys := range SystemOrder() {
		row = append(row, runCell(f, sys, "Q12", io, reps))
	}
	t.AddRow(row...)
	t.AddNote("RDBMS-based systems pay per-statement atomicity (undo logging); the MongoDB stand-in does not (§6.6)")
	return t
}

// RowCounts sanity-checks that all four systems agree on query result
// cardinalities (the harness's correctness cross-check).
func RowCounts(f *NoBenchFixture) (*Table, error) {
	t := &Table{
		Title:  fmt.Sprintf("Cross-system row-count agreement (%d records)", f.N),
		Header: append([]string{"Query"}, SystemOrder()...),
	}
	var firstErr error
	for _, qid := range nobench.QueryOrder() {
		if qid == "Q12" {
			continue // mutates state
		}
		row := []string{qid}
		for _, sys := range SystemOrder() {
			o := f.RunQuery(sys, qid)
			if o.Err != nil {
				row = append(row, "ERR")
				continue
			}
			row = append(row, fmt.Sprintf("%d", o.Rows))
		}
		t.AddRow(row...)
	}
	t.AddNote("EAV Q3/Q4 return only objects containing every projected sparse key (inner self-join reconstruction); the other systems emit NULLs for absent keys")
	return t, firstErr
}
