package bench

import (
	"fmt"
	"strings"
	"time"

	"github.com/sinewdata/sinew/internal/core"
	"github.com/sinewdata/sinew/internal/twittergen"
)

// TwitterFixture holds the synthetic-tweet Sinew database for the Table
// 1/2 and Appendix B experiments.
type TwitterFixture struct {
	Sinew *core.DB
	N     int
}

// SetupTwitter loads n synthetic tweets plus the delete-notice stream into
// a fresh Sinew database with everything virtual (no materialization, no
// statistics).
func SetupTwitter(n int, seed int64) (*TwitterFixture, error) {
	db := core.Open(core.DefaultConfig())
	if err := db.CreateCollection("tweets"); err != nil {
		return nil, err
	}
	if err := db.CreateCollection("deletes"); err != nil {
		return nil, err
	}
	cfg := twittergen.DefaultConfig(n)
	if _, err := db.LoadDocuments("tweets", twittergen.GenerateTweets(n, seed, cfg)); err != nil {
		return nil, err
	}
	if _, err := db.LoadDocuments("deletes", twittergen.GenerateDeletes(n, seed, 0.2, cfg)); err != nil {
		return nil, err
	}
	// Scale the planner's work_mem analogues to the dataset the way the
	// paper's 10M-tweet corpus related to Postgres's defaults: hash
	// strategies fit in memory only for modest cardinalities, so correct
	// estimates (physical columns + ANALYZE) and the fixed virtual-column
	// defaults land on different sides of the threshold.
	pc := db.RDBMS().PlanConfig()
	pc.HashAggMaxGroups = float64(n) / 8
	pc.HashJoinMaxBuildRows = float64(n) / 8
	return &TwitterFixture{Sinew: db, N: n}, nil
}

// Table1Queries are the four Twitter queries of Table 1.
func Table1Queries() map[string]string {
	return map[string]string{
		"T1-1": `SELECT DISTINCT "user.id" FROM tweets`,
		"T1-2": `SELECT SUM(retweet_count) FROM tweets GROUP BY "user.id"`,
		"T1-3": `SELECT "user.id" FROM tweets t1, deletes d1, deletes d2 ` +
			`WHERE t1.id_str = d1."delete.status.id_str" ` +
			`AND d1."delete.status.user_id" = d2."delete.status.user_id" ` +
			`AND t1."user.lang" = 'msa'`,
		"T1-4": `SELECT t1."user.screen_name", t2."user.screen_name" ` +
			`FROM tweets t1, tweets t2, tweets t3 ` +
			`WHERE t1."user.screen_name" = t3."user.screen_name" ` +
			`AND t1."user.screen_name" = t2.in_reply_to_screen_name ` +
			`AND t2."user.screen_name" = t3.in_reply_to_screen_name`,
	}
}

// table2MaterializeKeys are the attributes the physical phase materializes
// (every column Table 1's queries touch).
var table2MaterializeKeys = map[string][]string{
	"tweets": {
		"user.id", "user.lang", "user.screen_name",
		"in_reply_to_screen_name", "id_str", "retweet_count",
	},
	"deletes": {"delete.status.id_str", "delete.status.user_id"},
}

// Table2 reproduces "Table 2: Effect of Virtual Columns on Query Plans":
// it EXPLAINs and times the Table 1 queries with everything virtual, then
// materializes the referenced columns, refreshes statistics, and repeats.
// The same SQL must produce different operator choices because the
// optimizer sees fixed default estimates through extraction UDFs but true
// statistics through physical columns (§3.1.1).
func Table2(f *TwitterFixture, runQueries bool) (*Table, error) {
	queries := Table1Queries()
	order := []string{"T1-1", "T1-2", "T1-3", "T1-4"}

	type phaseResult struct {
		ops  map[string]string
		time map[string]time.Duration
	}
	capture := func() (phaseResult, error) {
		pr := phaseResult{ops: map[string]string{}, time: map[string]time.Duration{}}
		for _, q := range order {
			ops, leaves, err := f.Sinew.PlanShape(queries[q])
			if err != nil {
				return pr, fmt.Errorf("bench: plan %s: %w", q, err)
			}
			pr.ops[q] = summarizeOps(ops)
			if len(leaves) > 1 {
				pr.ops[q] += " [" + strings.Join(leaves, " ") + "]"
			}
			if runQueries {
				start := time.Now()
				if _, err := f.Sinew.Query(queries[q]); err != nil {
					return pr, fmt.Errorf("bench: run %s: %w", q, err)
				}
				pr.time[q] = time.Since(start)
			}
		}
		return pr, nil
	}

	virtual, err := capture()
	if err != nil {
		return nil, err
	}

	// Materialize the referenced columns and gather statistics.
	mat := core.NewMaterializer(f.Sinew)
	for table, keys := range table2MaterializeKeys {
		for _, k := range keys {
			if err := f.Sinew.SetMaterialized(table, k, true); err != nil {
				return nil, err
			}
		}
		if _, err := mat.RunOnce(table); err != nil {
			return nil, err
		}
		if err := f.Sinew.RDBMS().Analyze(table); err != nil {
			return nil, err
		}
	}

	physical, err := capture()
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title:  fmt.Sprintf("Table 2 — Effect of virtual columns on query plans (%d tweets)", f.N),
		Header: []string{"Query", "With Virtual Column", "With Physical Column"},
	}
	for _, q := range order {
		t.AddRow(q, virtual.ops[q], physical.ops[q])
	}
	if runQueries {
		for _, q := range order {
			t.AddNote("%s runtime: virtual %s s, physical %s s (%.1fx)",
				q, fmtDur(virtual.time[q]), fmtDur(physical.time[q]),
				safeRatio(virtual.time[q], physical.time[q]))
		}
	}
	return t, nil
}

func safeRatio(a, b time.Duration) float64 {
	if b <= 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// summarizeOps compresses a pre-order operator list into the interesting
// subsequence (aggregation/distinct/join/sort operators, in order).
func summarizeOps(ops []string) string {
	var keep []string
	for _, op := range ops {
		switch op {
		case "HashAggregate", "GroupAggregate", "Unique", "Hash Join",
			"Merge Join", "Nested Loop", "Sort":
			keep = append(keep, op)
		}
	}
	if len(keep) == 0 {
		return "Seq Scan"
	}
	return strings.Join(keep, " > ")
}

// Table5Queries are Appendix B's three queries.
func Table5Queries() []string {
	return []string{
		`SELECT "user.id" FROM tweets`,
		`SELECT * FROM tweets WHERE "user.lang" = 'en'`,
		`SELECT * FROM tweets ORDER BY "user.friends_count" DESC`,
	}
}

// Table5 reproduces "Table 5: Virtual vs Physical Column Performance"
// (Appendix B): each query runs with the referenced attribute in a virtual
// column, then again after materializing it. The overhead of extraction
// should be small (<5% projection, <2% selection/sort in the paper).
func Table5(f *TwitterFixture, reps int) (*Table, error) {
	if reps < 1 {
		reps = 1
	}
	queries := Table5Queries()
	// Minimum over reps (plus one warm-up): the overhead comparison needs
	// single-digit-percent precision, and the minimum is the standard
	// noise-robust microbenchmark statistic.
	timeQuery := func(sql string) (time.Duration, error) {
		if _, err := f.Sinew.Query(sql); err != nil {
			return 0, err
		}
		best := time.Duration(0)
		for i := 0; i < reps; i++ {
			start := time.Now()
			if _, err := f.Sinew.Query(sql); err != nil {
				return 0, err
			}
			d := time.Since(start)
			if best == 0 || d < best {
				best = d
			}
		}
		return best, nil
	}

	// Freeze page statistics before the virtual leg: the physical leg
	// re-analyzes after materializing, so without this the virtual side runs
	// un-striped scans and the overhead column conflates column layout with
	// statistics freshness.
	if err := f.Sinew.RDBMS().Analyze("tweets"); err != nil {
		return nil, err
	}

	virtual := make([]time.Duration, len(queries))
	for i, q := range queries {
		d, err := timeQuery(q)
		if err != nil {
			return nil, fmt.Errorf("bench: table5 virtual %q: %w", q, err)
		}
		virtual[i] = d
	}

	mat := core.NewMaterializer(f.Sinew)
	for _, key := range []string{"user.id", "user.lang", "user.friends_count"} {
		if err := f.Sinew.SetMaterialized("tweets", key, true); err != nil {
			return nil, err
		}
	}
	if _, err := mat.RunOnce("tweets"); err != nil {
		return nil, err
	}
	if err := f.Sinew.RDBMS().Analyze("tweets"); err != nil {
		return nil, err
	}

	physical := make([]time.Duration, len(queries))
	for i, q := range queries {
		d, err := timeQuery(q)
		if err != nil {
			return nil, fmt.Errorf("bench: table5 physical %q: %w", q, err)
		}
		physical[i] = d
	}

	t := &Table{
		Title:  fmt.Sprintf("Table 5 — Virtual vs physical column performance (%d tweets, seconds)", f.N),
		Header: []string{"Query", "Virtual", "Physical", "Overhead"},
	}
	for i, q := range queries {
		over := "-"
		if physical[i] > 0 {
			over = fmt.Sprintf("%+.1f%%", (float64(virtual[i])/float64(physical[i])-1)*100)
		}
		t.AddRow(q, fmtDur(virtual[i]), fmtDur(physical[i]), over)
	}
	t.AddNote("overhead falls as fixed query costs grow (the paper's Appendix B trend); absolute percentages exceed the paper's <5%%/<2%% because this engine's per-tuple fixed costs are far below Postgres's")
	return t, nil
}
