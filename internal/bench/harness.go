// Package bench is the reproduction harness for every table and figure in
// the Sinew paper's evaluation (§6, Appendices A and B). It loads the same
// generated datasets into Sinew and the three baselines (MongoDB stand-in,
// EAV, Postgres-JSON), runs the NoBench and Twitter workloads, and prints
// the same rows and series the paper reports.
//
// Absolute numbers are not comparable to the paper's testbed; the harness
// reproduces shapes: who wins, by roughly what factor, and where systems
// fail. I/O-bound regimes (the paper's 64M-record runs) are modeled by the
// byte-accounting pager plus an analytic bandwidth model (DESIGN.md §2):
// effective time = max(measured CPU time, bytes scanned / bandwidth) once
// the dataset exceeds simulated memory.
package bench

import (
	"fmt"
	"strings"
	"time"
)

// IOModel converts byte counts into effective execution time for the
// disk-resident regime.
type IOModel struct {
	// BandwidthBytesPerSec models the storage read bandwidth (the paper's
	// SSD measured 250–300 MB/s; default 275 MB/s).
	BandwidthBytesPerSec float64
	// MemoryBytes is the simulated RAM: datasets at or below it run with
	// warmed caches (pure CPU time); above it every scan pays bandwidth.
	MemoryBytes int64
}

// DefaultIOModel mirrors the paper's machine proportions at harness scale.
func DefaultIOModel() IOModel {
	return IOModel{BandwidthBytesPerSec: 275e6, MemoryBytes: 32 << 30}
}

// WarmCacheIOModel is the small-dataset regime: everything fits in memory
// and measured CPU time stands (the paper's 16M-record runs, §6).
func WarmCacheIOModel() IOModel { return IOModel{} }

// DiskBoundIOModel is the large-dataset regime scaled to harness size: the
// dataset does not fit in simulated memory and scans pay a bandwidth that
// preserves the paper's CPU-vs-I/O proportions — systems whose per-tuple
// CPU cost is low (Sinew) become scan-bound while text-parsing systems
// stay CPU-bound (§6.3's 64M-record observation).
func DiskBoundIOModel(datasetBytes int64) IOModel {
	return IOModel{BandwidthBytesPerSec: 100e6, MemoryBytes: datasetBytes / 2}
}

// Effective applies the model: below the memory limit the measured CPU
// time stands; above it the scan cannot run faster than the bandwidth
// allows.
func (m IOModel) Effective(cpu time.Duration, bytesRead, datasetBytes int64) time.Duration {
	if m.MemoryBytes <= 0 || datasetBytes <= m.MemoryBytes || m.BandwidthBytesPerSec <= 0 {
		return cpu
	}
	io := time.Duration(float64(bytesRead) / m.BandwidthBytesPerSec * float64(time.Second))
	if io > cpu {
		return io
	}
	return cpu
}

// Outcome is one measured query execution.
type Outcome struct {
	CPU       time.Duration
	BytesRead int64
	Rows      int64
	Err       error
}

// Effective renders the outcome under an I/O model.
func (o Outcome) Effective(m IOModel, datasetBytes int64) time.Duration {
	return m.Effective(o.CPU, o.BytesRead, datasetBytes)
}

// System names, in the paper's presentation order.
const (
	SysMongo = "MongoDB"
	SysSinew = "Sinew"
	SysEAV   = "EAV"
	SysPG    = "PG JSON"
)

// SystemOrder lists systems as the paper's figures do.
func SystemOrder() []string { return []string{SysMongo, SysSinew, SysEAV, SysPG} }

// ---------- report rendering ----------

// Table is a printable experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddNote appends a footnote.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders an aligned text table.
func (t *Table) String() string {
	var sb strings.Builder
	sb.WriteString(t.Title)
	sb.WriteString("\n")
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(c)
			}
			if i == 0 {
				sb.WriteString(c)
				sb.WriteString(strings.Repeat(" ", pad))
			} else {
				sb.WriteString(strings.Repeat(" ", pad))
				sb.WriteString(c)
			}
		}
		sb.WriteString("\n")
	}
	writeRow(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteString("\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		sb.WriteString("  note: ")
		sb.WriteString(n)
		sb.WriteString("\n")
	}
	return sb.String()
}

// fmtDur renders a duration in seconds with 3 significant decimals.
func fmtDur(d time.Duration) string { return fmt.Sprintf("%.4f", d.Seconds()) }

// fmtBytes renders a byte count in MB.
func fmtBytes(n int64) string { return fmt.Sprintf("%.2f MB", float64(n)/1e6) }
