package bench

import (
	"runtime"
	"runtime/debug"
	"strings"
	"testing"
	"time"

	"github.com/sinewdata/sinew/internal/rdbms/exec"
	"github.com/sinewdata/sinew/internal/rdbms/plan"
	"github.com/sinewdata/sinew/internal/rdbms/sqlparse"
)

func TestNoBenchFixtureAndFigures(t *testing.T) {
	f, err := SetupNoBench(2000, 42, 0)
	if err != nil {
		t.Fatal(err)
	}
	io := IOModel{} // warm cache

	// Cross-system row-count agreement for Q1..Q11.
	counts := map[string]map[string]int64{}
	for _, qid := range []string{"Q1", "Q2", "Q5", "Q6", "Q8", "Q9", "Q10", "Q11"} {
		counts[qid] = map[string]int64{}
		for _, sys := range SystemOrder() {
			o := f.RunQuery(sys, qid)
			if o.Err != nil {
				t.Fatalf("%s %s: %v", sys, qid, o.Err)
			}
			counts[qid][sys] = o.Rows
		}
		base := counts[qid][SysSinew]
		for sys, n := range counts[qid] {
			if sys == SysEAV && (qid == "Q1" || qid == "Q2") {
				continue // EAV inner-join projection drops nothing here, but see below
			}
			if n != base {
				t.Errorf("%s: %s returned %d rows, Sinew %d", qid, sys, n, base)
			}
		}
	}
	// Q5 must match exactly one record.
	if counts["Q5"][SysSinew] != 1 {
		t.Errorf("Q5 rows = %d, want 1", counts["Q5"][SysSinew])
	}
	// Q6 selects ~0.1%.
	if n := counts["Q6"][SysSinew]; n < 1 || n > int64(f.N/100) {
		t.Errorf("Q6 rows = %d out of %d", n, f.N)
	}

	// Q7: Sinew and Mongo agree; PG JSON must fail with a type error.
	sq7 := f.RunQuery(SysSinew, "Q7")
	mq7 := f.RunQuery(SysMongo, "Q7")
	if sq7.Err != nil || mq7.Err != nil {
		t.Fatalf("Q7 errors: sinew=%v mongo=%v", sq7.Err, mq7.Err)
	}
	if sq7.Rows != mq7.Rows {
		t.Errorf("Q7: sinew %d vs mongo %d", sq7.Rows, mq7.Rows)
	}
	if pg := f.RunQuery(SysPG, "Q7"); pg.Err == nil {
		t.Error("PG JSON Q7 should fail on multi-typed CAST")
	}

	// Q3/Q4 sparse projections: Sinew returns all rows (NULLs for absent).
	if o := f.RunQuery(SysSinew, "Q3"); o.Err != nil || o.Rows != int64(f.N) {
		t.Errorf("Q3 sinew rows=%d err=%v", o.Rows, o.Err)
	}

	// Tables render without error.
	for _, tbl := range []*Table{Table3(f), Figure6(f, io, 1), Figure7(f, io, 1), Figure8(f, io, 1)} {
		if !strings.Contains(tbl.String(), "Sinew") {
			t.Errorf("table missing Sinew column:\n%s", tbl)
		}
	}
}

func TestFigure7MongoScratchExhaustion(t *testing.T) {
	// Budget scratch below what the client-side join needs: the Mongo join
	// must DNF while the SQL systems complete (the paper's Figure 7).
	f, err := SetupNoBench(1000, 7, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	mongo := f.RunQuery(SysMongo, "Q11")
	if mongo.Err == nil {
		t.Error("expected Mongo Q11 to exhaust scratch budget")
	}
	sinew := f.RunQuery(SysSinew, "Q11")
	if sinew.Err != nil {
		t.Errorf("Sinew Q11 failed: %v", sinew.Err)
	}
}

func TestTable2PlanFlips(t *testing.T) {
	f, err := SetupTwitter(4000, 11)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := Table2(f, false)
	if err != nil {
		t.Fatal(err)
	}
	find := func(q string) (virtual, physical string) {
		for _, row := range tbl.Rows {
			if row[0] == q {
				return row[1], row[2]
			}
		}
		t.Fatalf("row %s missing", q)
		return "", ""
	}
	// Q1: DISTINCT — HashAggregate virtual, Unique physical (Table 2 row 1).
	v, p := find("T1-1")
	if !strings.Contains(v, "HashAggregate") {
		t.Errorf("T1-1 virtual = %q, want HashAggregate", v)
	}
	if !strings.Contains(p, "Unique") {
		t.Errorf("T1-1 physical = %q, want Unique", p)
	}
	// Q2: GROUP BY — HashAggregate virtual, GroupAggregate physical.
	v, p = find("T1-2")
	if !strings.Contains(v, "HashAggregate") {
		t.Errorf("T1-2 virtual = %q, want HashAggregate", v)
	}
	if !strings.Contains(p, "GroupAggregate") {
		t.Errorf("T1-2 physical = %q, want GroupAggregate", p)
	}
	// Q3: the join algorithm flips — the virtual-column misestimate pushes
	// the second join past the hash work_mem threshold (merge join), while
	// correct estimates keep it hashed.
	v, p = find("T1-3")
	if !strings.Contains(v, "Merge Join") {
		t.Errorf("T1-3 virtual = %q, want a Merge Join", v)
	}
	if strings.Contains(p, "Merge Join") {
		t.Errorf("T1-3 physical = %q, want hash joins only", p)
	}
	// Q4 plans successfully in both states.
	v, p = find("T1-4")
	if v == "" || p == "" {
		t.Errorf("T1-4: empty plans (v=%q p=%q)", v, p)
	}
}

func TestTable4Serialization(t *testing.T) {
	tbl, err := Table4(500, 3)
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.String()
	if !strings.Contains(out, "Serialization (s)") || !strings.Contains(out, "Avro") {
		t.Errorf("table 4 malformed:\n%s", out)
	}
}

func TestTable5VirtualOverhead(t *testing.T) {
	f, err := SetupTwitter(1500, 5)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := Table5(f, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("table 5 rows: %v", tbl.Rows)
	}
}

func TestAblationsSmoke(t *testing.T) {
	// Tiny scales: these verify the ablation drivers end to end; the real
	// numbers come from the benchmarks.
	for name, fn := range map[string]func() (*Table, error){
		"hybrid":  func() (*Table, error) { return AblationHybrid(300, 1) },
		"dirty":   func() (*Table, error) { return AblationDirtyCoalesce(400, 2, 1) },
		"policy":  func() (*Table, error) { return AblationPolicy(300, 3) },
		"binsrch": func() (*Table, error) { return AblationBinarySearch(200, 4) },
		"arrays":  func() (*Table, error) { return AblationArrays(300, 5) },
	} {
		tbl, err := fn()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(tbl.Rows) == 0 {
			t.Errorf("%s: empty table", name)
		}
	}
}

func TestRowCountsTable(t *testing.T) {
	f, err := SetupNoBench(800, 21, 0)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := RowCounts(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 11 {
		t.Errorf("rows = %d", len(tbl.Rows))
	}
}

func TestIOModel(t *testing.T) {
	m := IOModel{BandwidthBytesPerSec: 100e6, MemoryBytes: 1000}
	// Below memory: CPU time stands.
	if got := m.Effective(time.Second, 1e9, 500); got != time.Second {
		t.Errorf("warm = %v", got)
	}
	// Above memory, IO dominates: 1e9 bytes / 100MB/s = 10s.
	if got := m.Effective(time.Second, 1e9, 2000); got != 10*time.Second {
		t.Errorf("io-bound = %v", got)
	}
	// Above memory, CPU dominates.
	if got := m.Effective(time.Minute, 1e6, 2000); got != time.Minute {
		t.Errorf("cpu-bound = %v", got)
	}
	// Zero-valued model is a no-op.
	if got := (IOModel{}).Effective(time.Second, 1e12, 1e12); got != time.Second {
		t.Errorf("zero model = %v", got)
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{Title: "T", Header: []string{"A", "BBBB"}}
	tbl.AddRow("x", "1")
	tbl.AddRow("longer", "22")
	tbl.AddNote("note %d", 7)
	out := tbl.String()
	for _, w := range []string{"T\n", "A", "BBBB", "longer", "note: note 7"} {
		if !strings.Contains(out, w) {
			t.Errorf("rendering missing %q:\n%s", w, out)
		}
	}
}

// BenchmarkBatchVsRow measures the batch executor against the row-at-a-time
// executor on a full-table projection over the NoBench fixture: once over
// materialized physical columns (pure executor overhead) and once over a
// virtual column (the extract-UDF hot path with per-batch header caching).
func BenchmarkBatchVsRow(b *testing.B) {
	f, err := SetupNoBench(4000, 42, 0)
	if err != nil {
		b.Fatal(err)
	}
	// Both modes allocate the same ~800KB result per query, and at the
	// default GOGC the collector's assist work on that shared allocation
	// swamps the executor difference being measured. Relax GC identically
	// for both modes (and collect between sub-benchmarks so neither starts
	// with the other's heap debt) to compare executor throughput.
	defer debug.SetGCPercent(debug.SetGCPercent(800))
	queries := []struct{ name, sql string }{
		{"Physical", `SELECT str1, num FROM ` + f.Par.Table},
		{"Virtual", `SELECT str2 FROM ` + f.Par.Table},
	}
	modes := []struct{ name, set string }{
		{"Row", `SET enable_batch = off`},
		{"Batch", `SET enable_batch = on`},
	}
	for _, q := range queries {
		for _, m := range modes {
			b.Run(q.name+"/"+m.name, func(b *testing.B) {
				if _, err := f.Sinew.Query(m.set); err != nil {
					b.Fatal(err)
				}
				runtime.GC()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := f.Sinew.Query(q.sql)
					if err != nil {
						b.Fatal(err)
					}
					if len(res.Rows) != f.N {
						b.Fatalf("rows = %d, want %d", len(res.Rows), f.N)
					}
				}
			})
		}
	}

	// Projection drains the same full-table projection through the bare
	// executor pipeline with no result materialization — the end-to-end
	// sub-benchmarks above allocate an identical ~800KB result per query in
	// both modes, so under sustained load they converge to allocator
	// throughput; this pair isolates the operator pipelines themselves.
	sql := `SELECT str1, num FROM ` + f.Par.Table
	for _, m := range modes {
		b.Run("Projection/"+m.name, func(b *testing.B) {
			if _, err := f.Sinew.Query(m.set); err != nil {
				b.Fatal(err)
			}
			stmt, err := sqlparse.Parse(sql)
			if err != nil {
				b.Fatal(err)
			}
			rewritten, cleanup, err := f.Sinew.RewriteStmt(stmt)
			if err != nil {
				b.Fatal(err)
			}
			defer cleanup()
			sel, ok := rewritten.(*sqlparse.SelectStmt)
			if !ok {
				b.Fatalf("rewrite produced %T", rewritten)
			}
			runtime.GC()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sp, err := f.Sinew.RDBMS().PlanSelect(sel)
				if err != nil {
					b.Fatal(err)
				}
				n, err := drainPlan(sp)
				if err != nil {
					b.Fatal(err)
				}
				if n != f.N {
					b.Fatalf("rows = %d, want %d", n, f.N)
				}
			}
		})
	}
	if _, err := f.Sinew.Query(`SET enable_batch = on`); err != nil {
		b.Fatal(err)
	}
}

// drainPlan runs a plan to end of stream without materializing a result,
// returning the row count. A batch-rooted plan is drained batch-at-a-time
// through the native pipeline; a row plan through the Volcano interface.
func drainPlan(sp *plan.SelectPlan) (int, error) {
	it := sp.Open()
	if br, ok := it.(*exec.BatchToRow); ok {
		in := br.In
		defer in.Close()
		n := 0
		for {
			b, err := in.NextBatch()
			if err != nil {
				return n, err
			}
			if b == nil {
				return n, nil
			}
			n += b.Len()
		}
	}
	defer it.Close()
	n := 0
	for {
		_, ok, err := it.Next()
		if err != nil {
			return n, err
		}
		if !ok {
			return n, nil
		}
		n++
	}
}
