package bench

import "testing"

// TestPageSkipOnNoBench pins the page-skipping win on the NoBench
// selections, independent of parallelism (GOMAXPROCS is irrelevant to
// skipping): the materialized `num` column is the record index, so its
// per-page min/max ranges are disjoint and a BETWEEN touching ~0.1% of
// records must read only the pages containing the match window. Each
// query must also return exactly what a skip-disabled run returns.
func TestPageSkipOnNoBench(t *testing.T) {
	f, err := SetupNoBench(2000, 21, 0)
	if err != nil {
		t.Fatal(err)
	}
	db := f.Sinew
	pager := db.RDBMS().Pager()
	queries := f.Par.Queries()

	for _, qid := range []string{"Q5", "Q6", "Q9", "Q10", "Q11"} {
		sql := queries[qid]
		if _, err := db.Query("SET enable_page_skip = off"); err != nil {
			t.Fatal(err)
		}
		pager.Reset()
		base, err := db.Query(sql)
		if err != nil {
			t.Fatalf("%s (skip off): %v", qid, err)
		}
		baseBytes, _ := pager.Stats()

		if _, err := db.Query("SET enable_page_skip = on"); err != nil {
			t.Fatal(err)
		}
		pager.Reset()
		res, err := db.Query(sql)
		if err != nil {
			t.Fatalf("%s (skip on): %v", qid, err)
		}
		skipBytes, _ := pager.Stats()
		skipped, _ := pager.ExecStats()

		if len(res.Rows) != len(base.Rows) {
			t.Fatalf("%s: %d rows with skipping, %d without", qid, len(res.Rows), len(base.Rows))
		}
		if skipBytes > baseBytes {
			t.Errorf("%s: skipping read MORE bytes (%d > %d)", qid, skipBytes, baseBytes)
		}
		// Q6/Q10 select a ~0.1% window of the monotone num column: nearly
		// every page must be provably excluded.
		if (qid == "Q6" || qid == "Q10") && skipped == 0 {
			t.Errorf("%s: expected page skips on the num range, got none (bytes %d vs %d)",
				qid, skipBytes, baseBytes)
		}
	}
}
