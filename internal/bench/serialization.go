package bench

import (
	"fmt"
	"time"

	"github.com/sinewdata/sinew/internal/jsonx"
	"github.com/sinewdata/sinew/internal/nobench"
	"github.com/sinewdata/sinew/internal/serial"
	"github.com/sinewdata/sinew/internal/serial/avrolike"
	"github.com/sinewdata/sinew/internal/serial/pblike"
)

// table4ExtractKeys are the keys extracted in the 10-key task (a mix of
// dense, nested, and sparse — the access pattern a projection produces).
var table4ExtractKeys = []string{
	"str1", "str2", "num", "bool", "dyn1", "thousandth",
	"nested_obj", "nested_arr", "sparse_110", "sparse_220",
}

// Table4 reproduces Appendix A's "Table 4: Comparison of Serialization
// Formats": serialization, deserialization, 1-key and 10-key extraction
// time, and encoded size, for Sinew's format vs the Protocol-Buffers-like
// and Avro-like baselines, over n NoBench objects.
func Table4(n int, seed int64) (*Table, error) {
	docs := nobench.Generate(n, seed)
	var originalBytes int64
	for _, d := range docs {
		originalBytes += int64(len(jsonx.ObjectValue(d).String()))
	}

	// Populate one shared dictionary up front (Avro requires the full
	// writer schema; Sinew and PB allocate incrementally but sharing keeps
	// attribute IDs identical across formats).
	dict := serial.NewDictionary()
	for _, d := range docs {
		for _, m := range d.Members() {
			if at, ok := serial.AttrTypeOf(m.Val); ok {
				dict.IDFor(m.Key, at)
			}
			if m.Val.Kind == jsonx.Object {
				for _, sm := range m.Val.Obj.Members() {
					if at, ok := serial.AttrTypeOf(sm.Val); ok {
						dict.IDFor(sm.Key, at)
					}
				}
			}
		}
	}

	type format struct {
		name        string
		serialize   func(*jsonx.Doc) ([]byte, error)
		deserialize func([]byte) (*jsonx.Doc, error)
		// extractMany fetches the given keys from one record the way an
		// application using the format would: Sinew random-accesses each
		// key; Protocol Buffers deserializes the whole message once and
		// then dereferences fields (the up-front cost Appendix A
		// describes); Avro scans sequentially per key (no random access,
		// no cheap partial decode).
		extractMany func([]byte, []string, map[string]serial.AttrType) error
	}
	formats := []format{
		{
			name:        "Sinew",
			serialize:   func(d *jsonx.Doc) ([]byte, error) { return serial.Serialize(d, dict) },
			deserialize: func(b []byte) (*jsonx.Doc, error) { return serial.Deserialize(b, dict) },
			extractMany: func(b []byte, keys []string, kt map[string]serial.AttrType) error {
				for _, k := range keys {
					if _, _, err := serial.ExtractPath(b, k, kt[k], dict); err != nil {
						return err
					}
				}
				return nil
			},
		},
		{
			name:        "Protocol Buffers",
			serialize:   func(d *jsonx.Doc) ([]byte, error) { return pblike.Serialize(d, dict) },
			deserialize: func(b []byte) (*jsonx.Doc, error) { return pblike.Deserialize(b, dict) },
			extractMany: func(b []byte, keys []string, _ map[string]serial.AttrType) error {
				doc, err := pblike.Deserialize(b, dict)
				if err != nil {
					return err
				}
				for _, k := range keys {
					doc.Get(k)
				}
				return nil
			},
		},
		{
			name:        "Avro",
			serialize:   func(d *jsonx.Doc) ([]byte, error) { return avrolike.Serialize(d, dict) },
			deserialize: func(b []byte) (*jsonx.Doc, error) { return avrolike.Deserialize(b, dict) },
			extractMany: func(b []byte, keys []string, kt map[string]serial.AttrType) error {
				for _, k := range keys {
					if _, _, err := avrolike.Extract(b, k, kt[k], dict); err != nil {
						return err
					}
				}
				return nil
			},
		},
	}

	// Resolve extraction key types once (dict-typed attributes).
	keyTypes := make(map[string]serial.AttrType, len(table4ExtractKeys))
	for _, k := range table4ExtractKeys {
		attrs := dict.IDsOfKey(k)
		if len(attrs) > 0 {
			keyTypes[k] = attrs[0].Type
		} else {
			keyTypes[k] = serial.TypeString
		}
	}

	t := &Table{
		Title:  fmt.Sprintf("Table 4 — Serialization format comparison (%d NoBench objects)", n),
		Header: []string{"Task", "Sinew", "Protocol Buffers", "Avro"},
	}
	rows := map[string][]string{
		"Serialization (s)":      {"Serialization (s)"},
		"Deserialization (s)":    {"Deserialization (s)"},
		"Extraction 1 key (s)":   {"Extraction 1 key (s)"},
		"Extraction 10 keys (s)": {"Extraction 10 keys (s)"},
		"Size":                   {"Size"},
	}

	for _, f := range formats {
		// Serialization.
		start := time.Now()
		encoded := make([][]byte, len(docs))
		var size int64
		for i, d := range docs {
			b, err := f.serialize(d)
			if err != nil {
				return nil, fmt.Errorf("bench: %s serialize: %w", f.name, err)
			}
			encoded[i] = b
			size += int64(len(b))
		}
		serTime := time.Since(start)

		// Deserialization.
		start = time.Now()
		for _, b := range encoded {
			if _, err := f.deserialize(b); err != nil {
				return nil, fmt.Errorf("bench: %s deserialize: %w", f.name, err)
			}
		}
		deserTime := time.Since(start)

		// Extraction: 1 key — "thousandth", a later attribute ID, so
		// sequential formats cannot stop early.
		oneKey := []string{"thousandth"}
		start = time.Now()
		for _, b := range encoded {
			if err := f.extractMany(b, oneKey, keyTypes); err != nil {
				return nil, fmt.Errorf("bench: %s extract: %w", f.name, err)
			}
		}
		ext1 := time.Since(start)

		// Extraction: 10 keys.
		start = time.Now()
		for _, b := range encoded {
			if err := f.extractMany(b, table4ExtractKeys, keyTypes); err != nil {
				return nil, fmt.Errorf("bench: %s extract10: %w", f.name, err)
			}
		}
		ext10 := time.Since(start)

		rows["Serialization (s)"] = append(rows["Serialization (s)"], fmtDur(serTime))
		rows["Deserialization (s)"] = append(rows["Deserialization (s)"], fmtDur(deserTime))
		rows["Extraction 1 key (s)"] = append(rows["Extraction 1 key (s)"], fmtDur(ext1))
		rows["Extraction 10 keys (s)"] = append(rows["Extraction 10 keys (s)"], fmtDur(ext10))
		rows["Size"] = append(rows["Size"], fmtBytes(size))
	}
	for _, name := range []string{
		"Serialization (s)", "Deserialization (s)",
		"Extraction 1 key (s)", "Extraction 10 keys (s)", "Size",
	} {
		t.AddRow(rows[name]...)
	}
	t.AddNote("Original JSON size: %s", fmtBytes(originalBytes))
	t.AddNote("Avro has no optional attributes: every record stores a union tag for all %d schema attributes", dict.Len())
	return t, nil
}
