package jsonx

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func mustParse(t *testing.T, s string) Value {
	t.Helper()
	v, err := ParseString(s)
	if err != nil {
		t.Fatalf("Parse(%q): %v", s, err)
	}
	return v
}

func TestParseScalars(t *testing.T) {
	cases := []struct {
		in   string
		want Value
	}{
		{`null`, NullValue()},
		{`true`, BoolValue(true)},
		{`false`, BoolValue(false)},
		{`42`, IntValue(42)},
		{`-17`, IntValue(-17)},
		{`0`, IntValue(0)},
		{`3.5`, FloatValue(3.5)},
		{`-0.25`, FloatValue(-0.25)},
		{`1e3`, FloatValue(1000)},
		{`2E-2`, FloatValue(0.02)},
		{`"hello"`, StringValue("hello")},
		{`""`, StringValue("")},
		{`"a\nb\t\"c\""`, StringValue("a\nb\t\"c\"")},
		{`"Aé"`, StringValue("Aé")},
		{`"😀"`, StringValue("😀")},
	}
	for _, c := range cases {
		got := mustParse(t, c.in)
		if !got.Equal(c.want) {
			t.Errorf("Parse(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestIntFloatDistinction(t *testing.T) {
	if mustParse(t, `2`).Kind != Int {
		t.Error("2 should parse as Int")
	}
	if mustParse(t, `2.0`).Kind != Float {
		t.Error("2.0 should parse as Float")
	}
	if mustParse(t, `2`).Equal(mustParse(t, `2.0`)) {
		t.Error("Int 2 must not Equal Float 2.0 (attribute typing)")
	}
}

func TestParseNested(t *testing.T) {
	v := mustParse(t, `{"a": 1, "b": {"c": [1, "x", null, {"d": true}]}, "e": []}`)
	if v.Kind != Object || v.Obj.Len() != 3 {
		t.Fatalf("v = %v", v)
	}
	b, _ := v.Obj.Get("b")
	c, _ := b.Obj.Get("c")
	if c.Kind != Array || len(c.A) != 4 {
		t.Fatalf("c = %v", c)
	}
	if c.A[2].Kind != Null {
		t.Errorf("c[2] = %v", c.A[2])
	}
	d, ok := c.A[3].Obj.Get("d")
	if !ok || !d.B {
		t.Errorf("d = %v", d)
	}
}

func TestMemberOrderPreserved(t *testing.T) {
	v := mustParse(t, `{"z": 1, "a": 2, "m": 3}`)
	got := v.Obj.Keys()
	want := []string{"z", "a", "m"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("keys = %v, want %v", got, want)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``, `{`, `}`, `[1,`, `{"a"}`, `{"a":}`, `{a:1}`, `"unterminated`,
		`01`, `1.`, `1e`, `tru`, `nul`, `[1 2]`, `{"a":1,}`, `1 2`,
		`"\q"`, "\"ctrl\x01char\"",
	}
	for _, s := range bad {
		if _, err := ParseString(s); err == nil {
			t.Errorf("Parse(%q) should fail", s)
		}
	}
}

func TestParseDocumentRejectsNonObject(t *testing.T) {
	if _, err := ParseDocument([]byte(`[1,2]`)); err == nil {
		t.Error("array should not be a document")
	}
	if _, err := ParseDocument([]byte(`{"a":1}`)); err != nil {
		t.Errorf("object document: %v", err)
	}
}

func TestDeepNestingLimit(t *testing.T) {
	deep := strings.Repeat("[", 600) + strings.Repeat("]", 600)
	if _, err := ParseString(deep); err == nil {
		t.Error("expected depth-limit error")
	}
}

func TestEncodeRoundTrip(t *testing.T) {
	inputs := []string{
		`{"a":1,"b":2.5,"c":"x","d":true,"e":null,"f":[1,"y",false],"g":{"h":-3}}`,
		`{"s":"\"quoted\" and \\slash\\ and \ttab"}`,
		`{"empty_obj":{},"empty_arr":[]}`,
		`{"unicode":"héllo wörld 日本"}`,
	}
	for _, in := range inputs {
		v1 := mustParse(t, in)
		out := v1.String()
		v2 := mustParse(t, out)
		if !v1.Equal(v2) {
			t.Errorf("round trip failed:\n in=%s\nout=%s", in, out)
		}
	}
}

func TestFloatAlwaysReadsBackAsFloat(t *testing.T) {
	v := FloatValue(4)
	again := mustParse(t, v.String())
	if again.Kind != Float {
		t.Errorf("Float 4 encoded as %q, reparsed as %v", v.String(), again.Kind)
	}
}

func TestDocSetGetDelete(t *testing.T) {
	d := NewDoc()
	d.Set("a", IntValue(1))
	d.Set("b", IntValue(2))
	d.Set("a", IntValue(3)) // overwrite keeps position
	if d.Len() != 2 || d.Keys()[0] != "a" {
		t.Fatalf("doc = %v", d.Keys())
	}
	if v, _ := d.Get("a"); v.I != 3 {
		t.Errorf("a = %v", v)
	}
	if !d.Delete("a") || d.Delete("a") {
		t.Error("delete semantics")
	}
	if d.Len() != 1 || !d.Has("b") {
		t.Errorf("after delete: %v", d.Keys())
	}
}

func TestFlatten(t *testing.T) {
	v := mustParse(t, `{"url":"x","user":{"id":7,"geo":{"lat":1.5}},"tags":[1,2]}`)
	flat := Flatten(v.Obj)
	paths := make(map[string]Value)
	for _, f := range flat {
		paths[f.Path] = f.Val
	}
	for _, want := range []string{"url", "user", "user.id", "user.geo", "user.geo.lat", "tags"} {
		if _, ok := paths[want]; !ok {
			t.Errorf("missing flattened path %q (got %v)", want, flat)
		}
	}
	if paths["user.id"].I != 7 {
		t.Errorf("user.id = %v", paths["user.id"])
	}
	if paths["tags"].Kind != Array {
		t.Errorf("tags kept whole, got %v", paths["tags"].Kind)
	}
}

func TestPathGet(t *testing.T) {
	v := mustParse(t, `{"user":{"name":{"first":"ann"}},"user.name":"shadow"}`)
	// Literal dotted member shadows the path.
	got, ok := PathGet(v.Obj, "user.name")
	if !ok || got.S != "shadow" {
		t.Errorf("user.name = %v %v", got, ok)
	}
	got, ok = PathGet(v.Obj, "user.name.first")
	if !ok || got.S != "ann" {
		t.Errorf("user.name.first = %v %v", got, ok)
	}
	if _, ok := PathGet(v.Obj, "user.missing"); ok {
		t.Error("user.missing should be absent")
	}
}

// randomValue builds an arbitrary JSON value for property tests.
func randomValue(r *rand.Rand, depth int) Value {
	k := r.Intn(7)
	if depth > 3 && k >= 5 {
		k = r.Intn(5)
	}
	switch k {
	case 0:
		return NullValue()
	case 1:
		return BoolValue(r.Intn(2) == 0)
	case 2:
		return IntValue(r.Int63() - r.Int63())
	case 3:
		return FloatValue(r.NormFloat64() * 1e6)
	case 4:
		b := make([]byte, r.Intn(20))
		for i := range b {
			b[i] = byte(32 + r.Intn(90))
		}
		return StringValue(string(b))
	case 5:
		n := r.Intn(4)
		elems := make([]Value, n)
		for i := range elems {
			elems[i] = randomValue(r, depth+1)
		}
		return ArrayValue(elems...)
	default:
		d := NewDoc()
		for i := 0; i < r.Intn(5); i++ {
			d.Set(string(rune('a'+r.Intn(26)))+string(rune('a'+r.Intn(26))), randomValue(r, depth+1))
		}
		return ObjectValue(d)
	}
}

func TestPropertyEncodeParseRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := NewDoc()
		for i := 0; i < 1+r.Intn(8); i++ {
			d.Set(string(rune('a'+r.Intn(26)))+string(rune('0'+r.Intn(10))), randomValue(r, 0))
		}
		v := ObjectValue(d)
		parsed, err := ParseString(v.String())
		return err == nil && v.Equal(parsed)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestValuePathGetArrays(t *testing.T) {
	v := mustParse(t, `{"tags":["a","b",{"deep":[10,20]}],"n":5}`)
	cases := []struct {
		path string
		ok   bool
		want Value
	}{
		{"tags.0", true, StringValue("a")},
		{"tags.2.deep.1", true, IntValue(20)},
		{"tags.9", false, Value{}},
		{"tags.x", false, Value{}},
		{"n.0", false, Value{}},
	}
	for _, c := range cases {
		got, ok := PathGet(v.Obj, c.path)
		if ok != c.ok {
			t.Errorf("PathGet(%q) ok = %v, want %v", c.path, ok, c.ok)
			continue
		}
		if ok && !got.Equal(c.want) {
			t.Errorf("PathGet(%q) = %v, want %v", c.path, got, c.want)
		}
	}
}
