// Package jsonx implements an order-preserving, type-faithful JSON value
// model, parser, and encoder.
//
// Unlike encoding/json, jsonx distinguishes integers from floating-point
// numbers (Sinew's catalog types integer and real depend on this), preserves
// object member order (needed for stable serialization and round-trip
// tests), and exposes a document model that the Sinew loader can flatten
// into dotted attribute paths.
package jsonx

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind identifies the dynamic type of a Value.
type Kind uint8

// The JSON kinds. Int and Float are both JSON numbers; the parser yields
// Int for numbers with no fraction or exponent that fit in int64.
const (
	Null Kind = iota
	Bool
	Int
	Float
	String
	Array
	Object
)

// String returns the lowercase kind name ("null", "bool", ...).
func (k Kind) String() string {
	switch k {
	case Null:
		return "null"
	case Bool:
		return "bool"
	case Int:
		return "int"
	case Float:
		return "float"
	case String:
		return "string"
	case Array:
		return "array"
	case Object:
		return "object"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is a single JSON value of any kind. The zero Value is JSON null.
type Value struct {
	Kind Kind
	// Exactly one of the following is meaningful, selected by Kind.
	B   bool
	I   int64
	F   float64
	S   string
	A   []Value
	Obj *Doc
}

// Doc is a JSON object with preserved member order and O(1) key lookup.
type Doc struct {
	members []Member
	index   map[string]int
}

// Member is a single key/value pair of an object.
type Member struct {
	Key string
	Val Value
}

// NewDoc returns an empty object.
func NewDoc() *Doc {
	return &Doc{index: make(map[string]int)}
}

// Set appends the member or overwrites an existing member with the same key.
func (d *Doc) Set(key string, v Value) {
	if i, ok := d.index[key]; ok {
		d.members[i].Val = v
		return
	}
	d.index[key] = len(d.members)
	d.members = append(d.members, Member{Key: key, Val: v})
}

// Get returns the value for key and whether it was present.
func (d *Doc) Get(key string) (Value, bool) {
	if d == nil {
		return Value{}, false
	}
	if i, ok := d.index[key]; ok {
		return d.members[i].Val, true
	}
	return Value{}, false
}

// Has reports whether key is present.
func (d *Doc) Has(key string) bool {
	if d == nil {
		return false
	}
	_, ok := d.index[key]
	return ok
}

// Delete removes key if present and reports whether it was removed.
func (d *Doc) Delete(key string) bool {
	i, ok := d.index[key]
	if !ok {
		return false
	}
	d.members = append(d.members[:i], d.members[i+1:]...)
	delete(d.index, key)
	for j := i; j < len(d.members); j++ {
		d.index[d.members[j].Key] = j
	}
	return true
}

// Len returns the number of members.
func (d *Doc) Len() int {
	if d == nil {
		return 0
	}
	return len(d.members)
}

// Members returns the members in insertion order. The returned slice is the
// Doc's backing storage; callers must not modify it.
func (d *Doc) Members() []Member {
	if d == nil {
		return nil
	}
	return d.members
}

// Keys returns the keys in insertion order.
func (d *Doc) Keys() []string {
	if d == nil {
		return nil
	}
	ks := make([]string, len(d.members))
	for i, m := range d.members {
		ks[i] = m.Key
	}
	return ks
}

// Convenience constructors.

// NullValue returns the JSON null value.
func NullValue() Value { return Value{Kind: Null} }

// BoolValue returns a JSON boolean.
func BoolValue(b bool) Value { return Value{Kind: Bool, B: b} }

// IntValue returns a JSON integer number.
func IntValue(i int64) Value { return Value{Kind: Int, I: i} }

// FloatValue returns a JSON floating-point number.
func FloatValue(f float64) Value { return Value{Kind: Float, F: f} }

// StringValue returns a JSON string.
func StringValue(s string) Value { return Value{Kind: String, S: s} }

// ArrayValue returns a JSON array over elems (not copied).
func ArrayValue(elems ...Value) Value { return Value{Kind: Array, A: elems} }

// ObjectValue returns a JSON object value wrapping d.
func ObjectValue(d *Doc) Value { return Value{Kind: Object, Obj: d} }

// Equal reports deep structural equality. Int and Float compare equal only
// if both are the same kind (2 != 2.0), matching Sinew's attribute typing.
func (v Value) Equal(w Value) bool {
	if v.Kind != w.Kind {
		return false
	}
	switch v.Kind {
	case Null:
		return true
	case Bool:
		return v.B == w.B
	case Int:
		return v.I == w.I
	case Float:
		return v.F == w.F
	case String:
		return v.S == w.S
	case Array:
		if len(v.A) != len(w.A) {
			return false
		}
		for i := range v.A {
			if !v.A[i].Equal(w.A[i]) {
				return false
			}
		}
		return true
	case Object:
		if v.Obj.Len() != w.Obj.Len() {
			return false
		}
		for _, m := range v.Obj.Members() {
			wv, ok := w.Obj.Get(m.Key)
			if !ok || !m.Val.Equal(wv) {
				return false
			}
		}
		return true
	}
	return false
}

// String renders the value as compact JSON text.
func (v Value) String() string {
	var sb strings.Builder
	encodeValue(&sb, v)
	return sb.String()
}

// IsNumeric reports whether the value is an Int or Float.
func (v Value) IsNumeric() bool { return v.Kind == Int || v.Kind == Float }

// AsFloat returns the numeric value widened to float64; ok is false for
// non-numeric kinds.
func (v Value) AsFloat() (f float64, ok bool) {
	switch v.Kind {
	case Int:
		return float64(v.I), true
	case Float:
		return v.F, true
	default:
		return 0, false
	}
}

// encodeValue appends compact JSON text for v to sb.
func encodeValue(sb *strings.Builder, v Value) {
	switch v.Kind {
	case Null:
		sb.WriteString("null")
	case Bool:
		if v.B {
			sb.WriteString("true")
		} else {
			sb.WriteString("false")
		}
	case Int:
		sb.WriteString(strconv.FormatInt(v.I, 10))
	case Float:
		sb.WriteString(formatFloat(v.F))
	case String:
		encodeString(sb, v.S)
	case Array:
		sb.WriteByte('[')
		for i, e := range v.A {
			if i > 0 {
				sb.WriteByte(',')
			}
			encodeValue(sb, e)
		}
		sb.WriteByte(']')
	case Object:
		sb.WriteByte('{')
		for i, m := range v.Obj.Members() {
			if i > 0 {
				sb.WriteByte(',')
			}
			encodeString(sb, m.Key)
			sb.WriteByte(':')
			encodeValue(sb, m.Val)
		}
		sb.WriteByte('}')
	}
}

// formatFloat renders f so that it always reads back as a Float (never as an
// integer literal), preserving the Int/Float distinction across round trips.
func formatFloat(f float64) string {
	s := strconv.FormatFloat(f, 'g', -1, 64)
	if !strings.ContainsAny(s, ".eE") && !strings.Contains(s, "Inf") && !strings.Contains(s, "NaN") {
		s += ".0"
	}
	return s
}

const hexDigits = "0123456789abcdef"

// encodeString writes s as a quoted, escaped JSON string.
func encodeString(sb *strings.Builder, s string) {
	sb.WriteByte('"')
	start := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 0x20 && c != '"' && c != '\\' {
			continue
		}
		sb.WriteString(s[start:i])
		switch c {
		case '"':
			sb.WriteString(`\"`)
		case '\\':
			sb.WriteString(`\\`)
		case '\n':
			sb.WriteString(`\n`)
		case '\r':
			sb.WriteString(`\r`)
		case '\t':
			sb.WriteString(`\t`)
		case '\b':
			sb.WriteString(`\b`)
		case '\f':
			sb.WriteString(`\f`)
		default:
			sb.WriteString(`\u00`)
			sb.WriteByte(hexDigits[c>>4])
			sb.WriteByte(hexDigits[c&0xf])
		}
		start = i + 1
	}
	sb.WriteString(s[start:])
	sb.WriteByte('"')
}
