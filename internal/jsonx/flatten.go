package jsonx

// Flattened is one attribute produced by flattening a document: a
// dot-delimited path and the value found there.
type Flattened struct {
	Path string
	Val  Value
}

// Flatten expands a document into Sinew's logical attribute set (§3.1.1 of
// the paper): every top-level key becomes an attribute, and the subkeys of a
// nested object are additionally exposed as dot-delimited attributes, with
// the parent object itself still referenceable by its original key. Arrays
// are kept whole (array handling strategies are layered above, §4.2).
//
// The returned slice is in document order: each parent object immediately
// precedes its expanded children.
func Flatten(d *Doc) []Flattened {
	var out []Flattened
	flattenInto(&out, "", d)
	return out
}

func flattenInto(out *[]Flattened, prefix string, d *Doc) {
	for _, m := range d.Members() {
		path := m.Key
		if prefix != "" {
			path = prefix + "." + m.Key
		}
		*out = append(*out, Flattened{Path: path, Val: m.Val})
		if m.Val.Kind == Object {
			flattenInto(out, path, m.Val.Obj)
		}
	}
}

// PathGet resolves a dot-delimited path ("user.name.first") against a
// document, descending through nested objects and — for numeric segments —
// array positions ("tags.0", the §4.2 positional addressing).
//
// Keys that themselves contain dots shadow paths: a literal member named
// "user.name" is checked before descending into "user".
func PathGet(d *Doc, path string) (Value, bool) {
	if v, ok := d.Get(path); ok {
		return v, true
	}
	for i := 0; i < len(path); i++ {
		if path[i] != '.' {
			continue
		}
		head, rest := path[:i], path[i+1:]
		if v, ok := d.Get(head); ok {
			if sub, ok := ValuePathGet(v, rest); ok {
				return sub, true
			}
		}
	}
	return Value{}, false
}

// ValuePathGet resolves a dotted path against any value: objects descend by
// key (with dotted-member shadowing), arrays by numeric index.
func ValuePathGet(v Value, path string) (Value, bool) {
	switch v.Kind {
	case Object:
		return PathGet(v.Obj, path)
	case Array:
		head, rest := path, ""
		for i := 0; i < len(path); i++ {
			if path[i] == '.' {
				head, rest = path[:i], path[i+1:]
				break
			}
		}
		idx, ok := parseIndex(head)
		if !ok || idx >= len(v.A) {
			return Value{}, false
		}
		if rest == "" {
			return v.A[idx], true
		}
		return ValuePathGet(v.A[idx], rest)
	default:
		return Value{}, false
	}
}

// parseIndex parses a non-negative decimal array index.
func parseIndex(s string) (int, bool) {
	if s == "" {
		return 0, false
	}
	n := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
		if n > 1<<20 {
			return 0, false
		}
	}
	return n, true
}
