package jsonx

import (
	"fmt"
	"strconv"
	"unicode/utf16"
	"unicode/utf8"
)

// SyntaxError describes a JSON parse failure with a byte offset.
type SyntaxError struct {
	Offset int
	Msg    string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("jsonx: syntax error at offset %d: %s", e.Offset, e.Msg)
}

// Parse parses a single JSON value from data, requiring that nothing but
// whitespace follows it.
func Parse(data []byte) (Value, error) {
	p := parser{data: data}
	p.skipSpace()
	v, err := p.parseValue(0)
	if err != nil {
		return Value{}, err
	}
	p.skipSpace()
	if p.pos != len(p.data) {
		return Value{}, p.errf("trailing data after value")
	}
	return v, nil
}

// ParseString is Parse on a string.
func ParseString(s string) (Value, error) { return Parse([]byte(s)) }

// ParseDocument parses a JSON value and requires it to be an object, which
// is the unit of loading in Sinew (one document per row).
func ParseDocument(data []byte) (*Doc, error) {
	v, err := Parse(data)
	if err != nil {
		return nil, err
	}
	if v.Kind != Object {
		return nil, &SyntaxError{Offset: 0, Msg: "top-level value is not an object"}
	}
	return v.Obj, nil
}

// maxDepth bounds nesting so hostile inputs cannot overflow the stack.
const maxDepth = 512

type parser struct {
	data []byte
	pos  int
}

func (p *parser) errf(format string, args ...any) error {
	return &SyntaxError{Offset: p.pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) skipSpace() {
	for p.pos < len(p.data) {
		switch p.data[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

func (p *parser) parseValue(depth int) (Value, error) {
	if depth > maxDepth {
		return Value{}, p.errf("nesting too deep (limit %d)", maxDepth)
	}
	if p.pos >= len(p.data) {
		return Value{}, p.errf("unexpected end of input")
	}
	switch c := p.data[p.pos]; {
	case c == '{':
		return p.parseObject(depth)
	case c == '[':
		return p.parseArray(depth)
	case c == '"':
		s, err := p.parseString()
		if err != nil {
			return Value{}, err
		}
		return StringValue(s), nil
	case c == 't':
		return p.parseLiteral("true", BoolValue(true))
	case c == 'f':
		return p.parseLiteral("false", BoolValue(false))
	case c == 'n':
		return p.parseLiteral("null", NullValue())
	case c == '-' || (c >= '0' && c <= '9'):
		return p.parseNumber()
	default:
		return Value{}, p.errf("unexpected character %q", c)
	}
}

func (p *parser) parseLiteral(lit string, v Value) (Value, error) {
	if len(p.data)-p.pos < len(lit) || string(p.data[p.pos:p.pos+len(lit)]) != lit {
		return Value{}, p.errf("invalid literal")
	}
	p.pos += len(lit)
	return v, nil
}

func (p *parser) parseObject(depth int) (Value, error) {
	p.pos++ // consume '{'
	doc := NewDoc()
	p.skipSpace()
	if p.pos < len(p.data) && p.data[p.pos] == '}' {
		p.pos++
		return ObjectValue(doc), nil
	}
	for {
		p.skipSpace()
		if p.pos >= len(p.data) || p.data[p.pos] != '"' {
			return Value{}, p.errf("expected object key string")
		}
		key, err := p.parseString()
		if err != nil {
			return Value{}, err
		}
		p.skipSpace()
		if p.pos >= len(p.data) || p.data[p.pos] != ':' {
			return Value{}, p.errf("expected ':' after object key")
		}
		p.pos++
		p.skipSpace()
		val, err := p.parseValue(depth + 1)
		if err != nil {
			return Value{}, err
		}
		doc.Set(key, val)
		p.skipSpace()
		if p.pos >= len(p.data) {
			return Value{}, p.errf("unterminated object")
		}
		switch p.data[p.pos] {
		case ',':
			p.pos++
		case '}':
			p.pos++
			return ObjectValue(doc), nil
		default:
			return Value{}, p.errf("expected ',' or '}' in object")
		}
	}
}

func (p *parser) parseArray(depth int) (Value, error) {
	p.pos++ // consume '['
	var elems []Value
	p.skipSpace()
	if p.pos < len(p.data) && p.data[p.pos] == ']' {
		p.pos++
		return Value{Kind: Array, A: elems}, nil
	}
	for {
		p.skipSpace()
		v, err := p.parseValue(depth + 1)
		if err != nil {
			return Value{}, err
		}
		elems = append(elems, v)
		p.skipSpace()
		if p.pos >= len(p.data) {
			return Value{}, p.errf("unterminated array")
		}
		switch p.data[p.pos] {
		case ',':
			p.pos++
		case ']':
			p.pos++
			return Value{Kind: Array, A: elems}, nil
		default:
			return Value{}, p.errf("expected ',' or ']' in array")
		}
	}
}

func (p *parser) parseString() (string, error) {
	p.pos++ // consume '"'
	start := p.pos
	// Fast path: no escapes, ASCII-safe scan.
	for p.pos < len(p.data) {
		c := p.data[p.pos]
		if c == '"' {
			s := string(p.data[start:p.pos])
			p.pos++
			return s, nil
		}
		if c == '\\' || c < 0x20 {
			break
		}
		p.pos++
	}
	// Slow path with escape handling.
	buf := make([]byte, 0, p.pos-start+16)
	buf = append(buf, p.data[start:p.pos]...)
	for p.pos < len(p.data) {
		c := p.data[p.pos]
		switch {
		case c == '"':
			p.pos++
			return string(buf), nil
		case c < 0x20:
			return "", p.errf("control character in string")
		case c == '\\':
			p.pos++
			if p.pos >= len(p.data) {
				return "", p.errf("unterminated escape")
			}
			switch e := p.data[p.pos]; e {
			case '"':
				buf = append(buf, '"')
			case '\\':
				buf = append(buf, '\\')
			case '/':
				buf = append(buf, '/')
			case 'b':
				buf = append(buf, '\b')
			case 'f':
				buf = append(buf, '\f')
			case 'n':
				buf = append(buf, '\n')
			case 'r':
				buf = append(buf, '\r')
			case 't':
				buf = append(buf, '\t')
			case 'u':
				r, err := p.parseHexRune()
				if err != nil {
					return "", err
				}
				if utf16.IsSurrogate(r) {
					// Expect a low surrogate continuation.
					if p.pos+2 < len(p.data) && p.data[p.pos+1] == '\\' && p.data[p.pos+2] == 'u' {
						p.pos += 2
						r2, err := p.parseHexRune()
						if err != nil {
							return "", err
						}
						if dec := utf16.DecodeRune(r, r2); dec != utf8.RuneError {
							r = dec
						} else {
							r = utf8.RuneError
						}
					} else {
						r = utf8.RuneError
					}
				}
				buf = utf8.AppendRune(buf, r)
			default:
				return "", p.errf("invalid escape character %q", e)
			}
			p.pos++
		default:
			buf = append(buf, c)
			p.pos++
		}
	}
	return "", p.errf("unterminated string")
}

// parseHexRune parses the 4 hex digits of a \uXXXX escape; p.pos is on 'u'
// at entry and on the final hex digit at exit.
func (p *parser) parseHexRune() (rune, error) {
	if p.pos+4 >= len(p.data) {
		return 0, p.errf("truncated \\u escape")
	}
	var r rune
	for i := 1; i <= 4; i++ {
		c := p.data[p.pos+i]
		switch {
		case c >= '0' && c <= '9':
			r = r<<4 | rune(c-'0')
		case c >= 'a' && c <= 'f':
			r = r<<4 | rune(c-'a'+10)
		case c >= 'A' && c <= 'F':
			r = r<<4 | rune(c-'A'+10)
		default:
			return 0, p.errf("invalid hex digit %q in \\u escape", c)
		}
	}
	p.pos += 4
	return r, nil
}

func (p *parser) parseNumber() (Value, error) {
	start := p.pos
	if p.data[p.pos] == '-' {
		p.pos++
	}
	digits := 0
	for p.pos < len(p.data) && p.data[p.pos] >= '0' && p.data[p.pos] <= '9' {
		p.pos++
		digits++
	}
	if digits == 0 {
		return Value{}, p.errf("invalid number")
	}
	// Leading-zero rule: "0" alone or "0.x" are fine; "01" is not.
	if digits > 1 && p.data[start] == '0' || digits > 1 && p.data[start] == '-' && p.data[start+1] == '0' {
		return Value{}, p.errf("invalid leading zero in number")
	}
	isFloat := false
	if p.pos < len(p.data) && p.data[p.pos] == '.' {
		isFloat = true
		p.pos++
		frac := 0
		for p.pos < len(p.data) && p.data[p.pos] >= '0' && p.data[p.pos] <= '9' {
			p.pos++
			frac++
		}
		if frac == 0 {
			return Value{}, p.errf("digits required after decimal point")
		}
	}
	if p.pos < len(p.data) && (p.data[p.pos] == 'e' || p.data[p.pos] == 'E') {
		isFloat = true
		p.pos++
		if p.pos < len(p.data) && (p.data[p.pos] == '+' || p.data[p.pos] == '-') {
			p.pos++
		}
		exp := 0
		for p.pos < len(p.data) && p.data[p.pos] >= '0' && p.data[p.pos] <= '9' {
			p.pos++
			exp++
		}
		if exp == 0 {
			return Value{}, p.errf("digits required in exponent")
		}
	}
	text := string(p.data[start:p.pos])
	if !isFloat {
		if i, err := strconv.ParseInt(text, 10, 64); err == nil {
			return IntValue(i), nil
		}
		// Out-of-range integers fall back to float, like most JSON parsers.
	}
	f, err := strconv.ParseFloat(text, 64)
	if err != nil {
		p.pos = start
		return Value{}, p.errf("invalid number %q", text)
	}
	return FloatValue(f), nil
}
