// Package pgjson is the Postgres-9.3-JSON baseline of §6.1: documents are
// stored as raw JSON text in a single column of the embedded RDBMS and key
// dereferences happen through a UDF that re-parses the text per call. The
// package faithfully reproduces the baseline's documented deficiencies:
//
//   - extraction returns a JSON-text datum that must be CAST, so a key
//     holding values of multiple types raises a runtime error mid-query
//     (Q7 "cannot be executed", §6.4);
//   - the optimizer has no statistics on anything inside the JSON column,
//     so plans over it mis-estimate (§6.5's HashAggregate mis-plan);
//   - array predicates are inexpressible and fall back to a textually
//     approximate LIKE over the serialized array (§6.7).
package pgjson

import (
	"fmt"
	"strings"

	"github.com/sinewdata/sinew/internal/jsonx"
	"github.com/sinewdata/sinew/internal/rdbms"
	"github.com/sinewdata/sinew/internal/rdbms/exec"
	"github.com/sinewdata/sinew/internal/rdbms/sqlparse"
	"github.com/sinewdata/sinew/internal/rdbms/storage"
	"github.com/sinewdata/sinew/internal/rdbms/types"
)

// jsonParseCost is the optimizer's per-call cost of json_extract: parsing
// JSON text dwarfs binary extraction (the reason the paper's projection
// queries are CPU-bound on this baseline).
const jsonParseCost = 2.5

// DB is a Postgres-JSON-style store.
type DB struct {
	rdb               *rdbms.DB
	jsonSetRegistered bool
}

// Open creates the store and registers the json_extract UDF.
func Open() *DB {
	db := &DB{rdb: rdbms.Open()}
	db.rdb.RegisterFunc(&exec.FuncDef{
		Name: "json_extract", MinArgs: 2, MaxArgs: 2,
		RetType:     func([]types.Type) types.Type { return types.Text },
		CostPerCall: jsonParseCost,
		Opaque:      true,
		Eval:        evalJSONExtract,
	})
	return db
}

// evalJSONExtract parses the JSON text and returns the value at the dotted
// path rendered as text (Postgres's ->> semantics): the full parse happens
// on every call, which is the baseline's fundamental CPU cost.
func evalJSONExtract(args []types.Datum) (types.Datum, error) {
	if args[0].IsNull() || args[1].IsNull() {
		return types.NewNull(types.Text), nil
	}
	if args[0].Typ != types.Text || args[1].Typ != types.Text {
		return types.Datum{}, fmt.Errorf("json_extract: arguments must be text")
	}
	doc, err := jsonx.ParseDocument([]byte(args[0].S))
	if err != nil {
		return types.Datum{}, fmt.Errorf("json_extract: invalid JSON: %w", err)
	}
	v, ok := jsonx.PathGet(doc, args[1].S)
	if !ok || v.Kind == jsonx.Null {
		return types.NewNull(types.Text), nil
	}
	if v.Kind == jsonx.String {
		return types.NewText(v.S), nil
	}
	return types.NewText(v.String()), nil
}

// RDBMS exposes the underlying engine.
func (db *DB) RDBMS() *rdbms.DB { return db.rdb }

// CreateCollection creates the one-column JSON-text table.
func (db *DB) CreateCollection(name string) error {
	return db.rdb.CreateTable(strings.ToLower(name), []storage.Column{
		{Name: "data", Typ: types.Text},
	}, false)
}

// LoadJSON bulk-loads raw JSON document texts. Like Postgres, only syntax
// validation happens at load time (the fastest loader in Table 3).
func (db *DB) LoadJSON(collection string, docs []string) error {
	rows := make([]storage.Row, len(docs))
	for i, d := range docs {
		if _, err := jsonx.ParseDocument([]byte(d)); err != nil {
			return fmt.Errorf("pgjson: document %d: %w", i, err)
		}
		rows[i] = storage.Row{types.NewText(d)}
	}
	return db.rdb.InsertRows(strings.ToLower(collection), rows)
}

// Query rewrites a logical-schema SELECT/UPDATE the way a user of Postgres
// JSON must write it by hand — every key reference becomes
// CAST(json_extract(data, 'key') AS t) — and executes it.
func (db *DB) Query(sql string) (*rdbms.Result, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	rewritten, err := db.rewrite(stmt)
	if err != nil {
		return nil, err
	}
	return db.rdb.ExecStmt(rewritten)
}

// Explain plans the rewritten query.
func (db *DB) Explain(sql string) (string, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return "", err
	}
	rewritten, err := db.rewrite(stmt)
	if err != nil {
		return "", err
	}
	sel, ok := rewritten.(*sqlparse.SelectStmt)
	if !ok {
		return "", fmt.Errorf("pgjson: EXPLAIN supports only SELECT")
	}
	return db.rdb.ExplainSelect(sel)
}

func (db *DB) rewrite(stmt sqlparse.Statement) (sqlparse.Statement, error) {
	switch st := stmt.(type) {
	case *sqlparse.SelectStmt:
		out := &sqlparse.SelectStmt{Distinct: st.Distinct, From: st.From, Limit: st.Limit}
		for _, item := range st.Items {
			if item.Star {
				// SELECT * returns the raw JSON column.
				out.Items = append(out.Items, sqlparse.SelectItem{
					Expr: &sqlparse.ColumnRef{Name: "data"},
				})
				continue
			}
			e, err := db.rewriteExpr(item.Expr, types.Unknown)
			if err != nil {
				return nil, err
			}
			alias := item.Alias
			if alias == "" {
				if cr, ok := item.Expr.(*sqlparse.ColumnRef); ok {
					alias = cr.Name
				}
			}
			out.Items = append(out.Items, sqlparse.SelectItem{Expr: e, Alias: alias})
		}
		var err error
		if st.Where != nil {
			if out.Where, err = db.rewriteExpr(st.Where, types.Bool); err != nil {
				return nil, err
			}
		}
		for _, g := range st.GroupBy {
			ge, err := db.rewriteExpr(g, types.Unknown)
			if err != nil {
				return nil, err
			}
			out.GroupBy = append(out.GroupBy, ge)
		}
		if st.Having != nil {
			if out.Having, err = db.rewriteExpr(st.Having, types.Bool); err != nil {
				return nil, err
			}
		}
		for _, o := range st.OrderBy {
			oe, err := db.rewriteExpr(o.Expr, types.Unknown)
			if err != nil {
				return nil, err
			}
			out.OrderBy = append(out.OrderBy, sqlparse.OrderItem{Expr: oe, Desc: o.Desc})
		}
		return out, nil
	case *sqlparse.UpdateStmt:
		// Postgres 9.3 JSON had no in-place JSON mutation; the realistic
		// translation rewrites the whole document text in the SET clause.
		out := &sqlparse.UpdateStmt{Table: st.Table}
		for _, set := range st.Set {
			rhs, err := db.rewriteExpr(set.Value, types.Unknown)
			if err != nil {
				return nil, err
			}
			out.Set = append(out.Set, sqlparse.SetClause{
				Column: "data",
				Value: &sqlparse.FuncCall{Name: "json_set", Args: []sqlparse.Expr{
					&sqlparse.ColumnRef{Name: "data"},
					&sqlparse.Literal{Val: types.NewText(set.Column)},
					rhs,
				}},
			})
		}
		var err error
		if st.Where != nil {
			if out.Where, err = db.rewriteExpr(st.Where, types.Bool); err != nil {
				return nil, err
			}
		}
		db.ensureJSONSet()
		return out, nil
	default:
		return stmt, nil
	}
}

// ensureJSONSet registers the whole-document rewrite function used by
// UPDATE: parse text, set key, re-serialize — the expensive text round
// trip behind Figure 8's pgjson bar.
func (db *DB) ensureJSONSet() {
	if db.jsonSetRegistered {
		return
	}
	db.jsonSetRegistered = true
	db.rdb.RegisterFunc(&exec.FuncDef{
		Name: "json_set", MinArgs: 3, MaxArgs: 3,
		RetType:     func([]types.Type) types.Type { return types.Text },
		CostPerCall: jsonParseCost * 2,
		Opaque:      true,
		Eval: func(args []types.Datum) (types.Datum, error) {
			if args[0].IsNull() {
				return types.NewNull(types.Text), nil
			}
			doc, err := jsonx.ParseDocument([]byte(args[0].S))
			if err != nil {
				return types.Datum{}, err
			}
			var v jsonx.Value
			switch args[2].Typ {
			case types.Text:
				v = jsonx.StringValue(args[2].S)
			case types.Int:
				v = jsonx.IntValue(args[2].I)
			case types.Float:
				v = jsonx.FloatValue(args[2].F)
			case types.Bool:
				v = jsonx.BoolValue(args[2].B)
			default:
				v = jsonx.NullValue()
			}
			doc.Set(args[1].S, v)
			return types.NewText(jsonx.ObjectValue(doc).String()), nil
		},
	})
}

// rewriteExpr maps logical references to CAST(json_extract(...) AS t). The
// want type flows from comparison contexts; Unknown leaves the text form
// (Postgres's ->> behaviour).
func (db *DB) rewriteExpr(e sqlparse.Expr, want types.Type) (sqlparse.Expr, error) {
	switch x := e.(type) {
	case nil:
		return nil, nil
	case *sqlparse.Literal:
		return x, nil
	case *sqlparse.ColumnRef:
		if x.Name == "data" {
			return x, nil
		}
		extract := &sqlparse.FuncCall{Name: "json_extract", Args: []sqlparse.Expr{
			&sqlparse.ColumnRef{Table: x.Table, Name: "data"},
			&sqlparse.Literal{Val: types.NewText(x.Name)},
		}}
		if want == types.Unknown || want == types.Text || want == types.Bool {
			if want == types.Bool {
				return &sqlparse.CastExpr{X: extract, To: types.Bool}, nil
			}
			return extract, nil
		}
		// The CAST is where multi-typed keys blow up at runtime (§6.4).
		return &sqlparse.CastExpr{X: extract, To: want}, nil
	case *sqlparse.BinaryExpr:
		lw, rw := types.Unknown, types.Unknown
		switch x.Op {
		case sqlparse.OpEq, sqlparse.OpNe, sqlparse.OpLt, sqlparse.OpLe, sqlparse.OpGt, sqlparse.OpGe:
			lw, rw = typeOfLiteral(x.R), typeOfLiteral(x.L)
		case sqlparse.OpAnd, sqlparse.OpOr:
			lw, rw = types.Bool, types.Bool
		case sqlparse.OpAdd, sqlparse.OpSub, sqlparse.OpMul, sqlparse.OpDiv, sqlparse.OpMod:
			lw, rw = types.Float, types.Float
		}
		l, err := db.rewriteExpr(x.L, lw)
		if err != nil {
			return nil, err
		}
		r, err := db.rewriteExpr(x.R, rw)
		if err != nil {
			return nil, err
		}
		return &sqlparse.BinaryExpr{Op: x.Op, L: l, R: r}, nil
	case *sqlparse.UnaryExpr:
		sub, err := db.rewriteExpr(x.X, want)
		if err != nil {
			return nil, err
		}
		return &sqlparse.UnaryExpr{Op: x.Op, X: sub}, nil
	case *sqlparse.IsNullExpr:
		sub, err := db.rewriteExpr(x.X, types.Unknown)
		if err != nil {
			return nil, err
		}
		return &sqlparse.IsNullExpr{X: sub, Not: x.Not}, nil
	case *sqlparse.BetweenExpr:
		// Postgres rewrites BETWEEN into two comparisons without
		// precomputing the shared operand (§6.4) — json_extract runs twice
		// per row. We reproduce that by emitting the two comparisons.
		bt := typeOfLiteral(x.Lo)
		if bt == types.Unknown {
			bt = typeOfLiteral(x.Hi)
		}
		sub1, err := db.rewriteExpr(x.X, bt)
		if err != nil {
			return nil, err
		}
		sub2, err := db.rewriteExpr(x.X, bt)
		if err != nil {
			return nil, err
		}
		lo, err := db.rewriteExpr(x.Lo, types.Unknown)
		if err != nil {
			return nil, err
		}
		hi, err := db.rewriteExpr(x.Hi, types.Unknown)
		if err != nil {
			return nil, err
		}
		cmp := &sqlparse.BinaryExpr{Op: sqlparse.OpAnd,
			L: &sqlparse.BinaryExpr{Op: sqlparse.OpGe, L: sub1, R: lo},
			R: &sqlparse.BinaryExpr{Op: sqlparse.OpLe, L: sub2, R: hi},
		}
		if x.Not {
			return &sqlparse.UnaryExpr{Op: "NOT", X: cmp}, nil
		}
		return cmp, nil
	case *sqlparse.InListExpr:
		var lt types.Type
		for _, le := range x.List {
			if lt = typeOfLiteral(le); lt != types.Unknown {
				break
			}
		}
		sub, err := db.rewriteExpr(x.X, lt)
		if err != nil {
			return nil, err
		}
		list := make([]sqlparse.Expr, len(x.List))
		for i, le := range x.List {
			if list[i], err = db.rewriteExpr(le, types.Unknown); err != nil {
				return nil, err
			}
		}
		return &sqlparse.InListExpr{X: sub, List: list, Not: x.Not}, nil
	case *sqlparse.LikeExpr:
		sub, err := db.rewriteExpr(x.X, types.Text)
		if err != nil {
			return nil, err
		}
		pat, err := db.rewriteExpr(x.Pattern, types.Text)
		if err != nil {
			return nil, err
		}
		return &sqlparse.LikeExpr{X: sub, Pattern: pat, Not: x.Not}, nil
	case *sqlparse.AnyExpr:
		// Array containment is inexpressible over the JSON text type; the
		// paper used "the approximate, but technically incorrect LIKE
		// predicate over the text representation of the array" (§6.7).
		lit, ok := x.X.(*sqlparse.Literal)
		if !ok {
			return nil, fmt.Errorf("pgjson: array containment supports only literal probes")
		}
		arr, err := db.rewriteExpr(x.Array, types.Text)
		if err != nil {
			return nil, err
		}
		var pat string
		if lit.Val.Typ == types.Text {
			pat = "%\"" + lit.Val.S + "\"%"
		} else {
			pat = "%" + lit.Val.String() + "%"
		}
		return &sqlparse.LikeExpr{X: arr, Pattern: &sqlparse.Literal{Val: types.NewText(pat)}}, nil
	case *sqlparse.CastExpr:
		sub, err := db.rewriteExpr(x.X, x.To)
		if err != nil {
			return nil, err
		}
		if _, isCast := sub.(*sqlparse.CastExpr); isCast {
			return sub, nil
		}
		return &sqlparse.CastExpr{X: sub, To: x.To}, nil
	case *sqlparse.FuncCall:
		args := make([]sqlparse.Expr, len(x.Args))
		argWant := types.Unknown
		if x.Name == "sum" || x.Name == "avg" || x.Name == "min" || x.Name == "max" {
			argWant = types.Float
		}
		for i, a := range x.Args {
			var err error
			if args[i], err = db.rewriteExpr(a, argWant); err != nil {
				return nil, err
			}
		}
		return &sqlparse.FuncCall{Name: x.Name, Args: args, Star: x.Star, Distinct: x.Distinct}, nil
	default:
		return nil, fmt.Errorf("pgjson: unsupported expression %T", e)
	}
}

func typeOfLiteral(e sqlparse.Expr) types.Type {
	if lit, ok := e.(*sqlparse.Literal); ok {
		return lit.Val.Typ
	}
	return types.Unknown
}
