package pgjson

import (
	"strings"
	"testing"
)

func seed(t *testing.T) *DB {
	t.Helper()
	db := Open()
	if err := db.CreateCollection("events"); err != nil {
		t.Fatal(err)
	}
	docs := []string{
		`{"kind":"a","n":1,"user":{"lang":"en"},"tags":["x","y"]}`,
		`{"kind":"b","n":2,"user":{"lang":"pl"}}`,
		`{"kind":"a","n":3,"dyn":"three"}`,
		`{"kind":"c","n":4,"dyn":40}`,
	}
	if err := db.LoadJSON("events", docs); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestLoadValidatesSyntax(t *testing.T) {
	db := Open()
	db.CreateCollection("t")
	if err := db.LoadJSON("t", []string{`{"ok":1}`, `{broken`}); err == nil {
		t.Error("invalid JSON should fail the load")
	}
}

func TestProjectionViaExtraction(t *testing.T) {
	db := seed(t)
	res, err := db.Query(`SELECT kind FROM events WHERE n = 2`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].S != "b" {
		t.Fatalf("rows = %v", res.Rows)
	}
	// Every key reference becomes a json_extract over the text column.
	// Nested dotted paths work through PathGet.
	res, err = db.Query(`SELECT "user.lang" FROM events WHERE kind = 'b'`)
	if err != nil || res.Rows[0][0].S != "pl" {
		t.Fatalf("nested = %v %v", res.Rows, err)
	}
}

func TestNumericContextCasts(t *testing.T) {
	db := seed(t)
	res, err := db.Query(`SELECT kind FROM events WHERE n BETWEEN 2 AND 3`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestMultiTypedKeyFailsLikeThePaper(t *testing.T) {
	db := seed(t)
	// dyn holds "three" in one record and 40 in another; the CAST blows up
	// at runtime — the §6.4 behaviour that makes Q7 inexpressible.
	if _, err := db.Query(`SELECT kind FROM events WHERE dyn BETWEEN 1 AND 50`); err == nil {
		t.Error("expected runtime CAST failure on multi-typed key")
	}
	// Plain projection of the same key is fine (text form, no cast).
	res, err := db.Query(`SELECT dyn FROM events WHERE kind = 'c'`)
	if err != nil || res.Rows[0][0].S != "40" {
		t.Fatalf("projection = %v %v", res.Rows, err)
	}
}

func TestArrayContainmentViaLike(t *testing.T) {
	db := seed(t)
	res, err := db.Query(`SELECT kind FROM events WHERE 'x' IN tags`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].S != "a" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestSelectStarReturnsRawJSON(t *testing.T) {
	db := seed(t)
	res, err := db.Query(`SELECT * FROM events WHERE n = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Rows[0][0].S, `"kind":"a"`) {
		t.Errorf("star = %v", res.Rows[0][0])
	}
}

func TestGroupByOverExtraction(t *testing.T) {
	db := seed(t)
	res, err := db.Query(`SELECT kind, COUNT(*) FROM events GROUP BY kind ORDER BY kind`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 || res.Rows[0][1].I != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestUpdateRewritesWholeDocument(t *testing.T) {
	db := seed(t)
	res, err := db.Query(`UPDATE events SET kind = 'z' WHERE n = 4`)
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsAffected != 1 {
		t.Fatalf("affected = %d", res.RowsAffected)
	}
	check, _ := db.Query(`SELECT kind FROM events WHERE n = 4`)
	if check.Rows[0][0].S != "z" {
		t.Errorf("kind = %v", check.Rows[0][0])
	}
	// The other keys survived the text round trip.
	check, _ = db.Query(`SELECT dyn FROM events WHERE n = 4`)
	if check.Rows[0][0].S != "40" {
		t.Errorf("dyn = %v", check.Rows[0][0])
	}
}

func TestExplainShowsOpaquePlan(t *testing.T) {
	db := seed(t)
	text, err := db.Explain(`SELECT DISTINCT kind FROM events`)
	if err != nil {
		t.Fatal(err)
	}
	// No statistics exist on anything inside the JSON: the plan uses the
	// fixed default estimate and hashes.
	if !strings.Contains(text, "HashAggregate") {
		t.Errorf("plan:\n%s", text)
	}
}

func TestMissingKeyIsNull(t *testing.T) {
	db := seed(t)
	res, err := db.Query(`SELECT kind FROM events WHERE nonexistent IS NULL`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Errorf("rows = %d", len(res.Rows))
	}
}
