// Package twittergen synthesizes tweets with the shape of the Twitter API
// objects used by §3.1.1, Table 1/2, and Appendix B of the Sinew paper:
// 13 nullable top-level attributes, a nested user object (with nested geo),
// optional entities (hashtags, urls, user_mentions, media), and reply
// metadata — flattening to 150+ mostly-optional attributes whose sparsity
// ranges from under 1% to 100%. A parallel stream of delete notices
// ({"delete":{"status":{...}}}) feeds Table 1's Q3.
//
// This is the documented substitution for the paper's 10M real tweets
// (DESIGN.md §2): the experiments depend only on key sparsity, value
// cardinality, and nesting shape, which the generator controls.
package twittergen

import (
	"fmt"
	"math/rand"

	"github.com/sinewdata/sinew/internal/jsonx"
)

// Config shapes the synthetic corpus.
type Config struct {
	// Users is the distinct user population (drives user.id cardinality;
	// the paper's DISTINCT/GROUP BY plans hinge on it being large).
	Users int
	// LangMsaFrac is the fraction of tweets whose user.lang is "msa"
	// (Table 1 Q3's filter; rare in real data).
	LangMsaFrac float64
	// ReplyFrac is the fraction of tweets that are replies (Q4's
	// in_reply_to_screen_name density).
	ReplyFrac float64
	// EntityFrac is the fraction of tweets with hashtags/urls/mentions.
	EntityFrac float64
	// MediaFrac is the fraction with media (sparsest block).
	MediaFrac float64
	// GeoFrac is the fraction with user.geo.
	GeoFrac float64
}

// DefaultConfig mirrors rough public-corpus proportions.
func DefaultConfig(n int) Config {
	users := n / 2
	if users < 10 {
		users = 10
	}
	return Config{
		Users:       users,
		LangMsaFrac: 0.002,
		ReplyFrac:   0.35,
		EntityFrac:  0.6,
		MediaFrac:   0.05,
		GeoFrac:     0.02,
	}
}

var languages = []string{"en", "es", "pt", "ja", "ar", "fr", "de", "tr", "ru", "ko"}

// GenerateTweets produces n tweets deterministically.
func GenerateTweets(n int, seed int64, cfg Config) []*jsonx.Doc {
	r := rand.New(rand.NewSource(seed))
	out := make([]*jsonx.Doc, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, tweet(r, int64(i), cfg))
	}
	return out
}

// GenerateDeletes produces delete notices referencing the first n tweets
// with the given probability per tweet.
func GenerateDeletes(n int, seed int64, frac float64, cfg Config) []*jsonx.Doc {
	r := rand.New(rand.NewSource(seed ^ 0x5eed))
	var out []*jsonx.Doc
	for i := 0; i < n; i++ {
		if r.Float64() >= frac {
			continue
		}
		status := jsonx.NewDoc()
		status.Set("id", jsonx.IntValue(int64(i)))
		status.Set("id_str", jsonx.StringValue(fmt.Sprintf("t%d", i)))
		status.Set("user_id", jsonx.IntValue(int64(r.Intn(cfg.Users))))
		status.Set("user_id_str", jsonx.StringValue(fmt.Sprintf("u%d", r.Intn(cfg.Users))))
		del := jsonx.NewDoc()
		del.Set("status", jsonx.ObjectValue(status))
		doc := jsonx.NewDoc()
		doc.Set("delete", jsonx.ObjectValue(del))
		out = append(out, doc)
	}
	return out
}

func tweet(r *rand.Rand, i int64, cfg Config) *jsonx.Doc {
	doc := jsonx.NewDoc()
	userID := int64(r.Intn(cfg.Users))

	// Required top-level attributes.
	doc.Set("id", jsonx.IntValue(i))
	doc.Set("id_str", jsonx.StringValue(fmt.Sprintf("t%d", i)))
	doc.Set("text", jsonx.StringValue(tweetText(r, i)))
	doc.Set("created_at", jsonx.StringValue(fmt.Sprintf("2013-08-%02d 12:%02d:%02d", 1+r.Intn(28), r.Intn(60), r.Intn(60))))
	doc.Set("source", jsonx.StringValue("web"))
	doc.Set("truncated", jsonx.BoolValue(false))
	doc.Set("retweet_count", jsonx.IntValue(int64(r.Intn(100))))
	doc.Set("favorite_count", jsonx.IntValue(int64(r.Intn(50))))
	doc.Set("lang", jsonx.StringValue(pick(r, languages)))

	// Optional reply block (~ReplyFrac).
	if r.Float64() < cfg.ReplyFrac {
		other := int64(r.Intn(cfg.Users))
		doc.Set("in_reply_to_status_id", jsonx.IntValue(r.Int63n(i+1)))
		doc.Set("in_reply_to_user_id", jsonx.IntValue(other))
		doc.Set("in_reply_to_screen_name", jsonx.StringValue(screenName(other)))
	}

	// Nested user object (always present; the parent stays referenceable).
	user := jsonx.NewDoc()
	user.Set("id", jsonx.IntValue(userID))
	user.Set("id_str", jsonx.StringValue(fmt.Sprintf("u%d", userID)))
	user.Set("screen_name", jsonx.StringValue(screenName(userID)))
	user.Set("name", jsonx.StringValue(fmt.Sprintf("User %d", userID)))
	if r.Float64() < cfg.LangMsaFrac {
		user.Set("lang", jsonx.StringValue("msa"))
	} else {
		user.Set("lang", jsonx.StringValue(pick(r, languages)))
	}
	user.Set("followers_count", jsonx.IntValue(int64(r.Intn(100000))))
	user.Set("friends_count", jsonx.IntValue(int64(r.Intn(5000))))
	user.Set("statuses_count", jsonx.IntValue(int64(r.Intn(200000))))
	user.Set("verified", jsonx.BoolValue(r.Intn(100) == 0))
	if r.Float64() < cfg.GeoFrac {
		geo := jsonx.NewDoc()
		geo.Set("lat", jsonx.FloatValue(r.Float64()*180-90))
		geo.Set("lon", jsonx.FloatValue(r.Float64()*360-180))
		user.Set("geo", jsonx.ObjectValue(geo))
	}
	doc.Set("user", jsonx.ObjectValue(user))

	// Optional entities block.
	if r.Float64() < cfg.EntityFrac {
		entities := jsonx.NewDoc()
		if n := r.Intn(3); n > 0 {
			tags := make([]jsonx.Value, n)
			for j := range tags {
				tags[j] = jsonx.StringValue(fmt.Sprintf("tag%d", r.Intn(500)))
			}
			entities.Set("hashtags", jsonx.ArrayValue(tags...))
		}
		if r.Intn(2) == 0 {
			urls := make([]jsonx.Value, 1+r.Intn(2))
			for j := range urls {
				urls[j] = jsonx.StringValue(fmt.Sprintf("http://t.co/%06x", r.Intn(1<<24)))
			}
			entities.Set("urls", jsonx.ArrayValue(urls...))
		}
		if r.Intn(3) == 0 {
			mentions := make([]jsonx.Value, 1+r.Intn(2))
			for j := range mentions {
				mentions[j] = jsonx.StringValue(screenName(int64(r.Intn(cfg.Users))))
			}
			entities.Set("user_mentions", jsonx.ArrayValue(mentions...))
		}
		if entities.Len() > 0 {
			doc.Set("entities", jsonx.ObjectValue(entities))
		}
	}

	// Sparse media block (<= MediaFrac).
	if r.Float64() < cfg.MediaFrac {
		media := jsonx.NewDoc()
		media.Set("media_url", jsonx.StringValue(fmt.Sprintf("http://pbs.example/%d.jpg", i)))
		media.Set("type", jsonx.StringValue("photo"))
		media.Set("sizes.large.w", jsonx.IntValue(1024))
		media.Set("sizes.large.h", jsonx.IntValue(768))
		doc.Set("media", jsonx.ObjectValue(media))
	}
	return doc
}

func screenName(userID int64) string { return fmt.Sprintf("user_%d", userID) }

var words = []string{
	"the", "quick", "brown", "fox", "jumps", "over", "lazy", "dog",
	"data", "systems", "query", "scale", "coffee", "game", "music", "news",
}

func tweetText(r *rand.Rand, i int64) string {
	n := 4 + r.Intn(10)
	out := make([]byte, 0, n*6)
	for j := 0; j < n; j++ {
		if j > 0 {
			out = append(out, ' ')
		}
		out = append(out, pick(r, words)...)
	}
	return fmt.Sprintf("%s #%d", out, i)
}

func pick(r *rand.Rand, xs []string) string { return xs[r.Intn(len(xs))] }
