package twittergen

import (
	"testing"

	"github.com/sinewdata/sinew/internal/jsonx"
)

func TestDeterminism(t *testing.T) {
	cfg := DefaultConfig(100)
	a := GenerateTweets(100, 5, cfg)
	b := GenerateTweets(100, 5, cfg)
	for i := range a {
		if !jsonx.ObjectValue(a[i]).Equal(jsonx.ObjectValue(b[i])) {
			t.Fatalf("tweet %d differs with the same seed", i)
		}
	}
}

func TestTweetShape(t *testing.T) {
	cfg := DefaultConfig(500)
	tweets := GenerateTweets(500, 7, cfg)
	for i, tw := range tweets {
		for _, key := range []string{"id", "id_str", "text", "created_at", "user", "lang", "retweet_count"} {
			if !tw.Has(key) {
				t.Fatalf("tweet %d missing %s", i, key)
			}
		}
		user, _ := tw.Get("user")
		if user.Kind != jsonx.Object {
			t.Fatalf("user = %v", user)
		}
		for _, key := range []string{"id", "screen_name", "lang", "friends_count"} {
			if !user.Obj.Has(key) {
				t.Fatalf("tweet %d user missing %s", i, key)
			}
		}
	}
}

func TestSparsityProportions(t *testing.T) {
	n := 4000
	cfg := DefaultConfig(n)
	tweets := GenerateTweets(n, 11, cfg)
	var replies, media, msa, geo int
	for _, tw := range tweets {
		if tw.Has("in_reply_to_screen_name") {
			replies++
		}
		if tw.Has("media") {
			media++
		}
		if v, ok := jsonx.PathGet(tw, "user.lang"); ok && v.S == "msa" {
			msa++
		}
		if _, ok := jsonx.PathGet(tw, "user.geo"); ok {
			geo++
		}
	}
	within := func(name string, got int, frac float64) {
		want := frac * float64(n)
		if float64(got) < want*0.5 || float64(got) > want*2+10 {
			t.Errorf("%s = %d, expected ~%.0f", name, got, want)
		}
	}
	within("replies", replies, cfg.ReplyFrac)
	within("media", media, cfg.MediaFrac)
	within("msa", msa, cfg.LangMsaFrac)
	within("geo", geo, cfg.GeoFrac)
}

func TestUserCardinality(t *testing.T) {
	n := 2000
	cfg := DefaultConfig(n)
	tweets := GenerateTweets(n, 3, cfg)
	users := map[int64]bool{}
	for _, tw := range tweets {
		v, _ := jsonx.PathGet(tw, "user.id")
		users[v.I] = true
	}
	// Users is n/2: distinct user count must be large (Table 2 depends on
	// high cardinality).
	if len(users) < n/4 {
		t.Errorf("distinct users = %d", len(users))
	}
}

func TestDeletesReferenceStream(t *testing.T) {
	cfg := DefaultConfig(1000)
	dels := GenerateDeletes(1000, 3, 0.2, cfg)
	if len(dels) < 100 || len(dels) > 320 {
		t.Fatalf("deletes = %d, expected ~200", len(dels))
	}
	for _, d := range dels {
		if _, ok := jsonx.PathGet(d, "delete.status.id_str"); !ok {
			t.Fatal("delete notice missing delete.status.id_str")
		}
		if _, ok := jsonx.PathGet(d, "delete.status.user_id"); !ok {
			t.Fatal("delete notice missing delete.status.user_id")
		}
	}
}
