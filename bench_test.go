// Benchmarks regenerating every table and figure of the Sinew paper's
// evaluation (§6 and Appendices A–B). Each benchmark drives the harness in
// internal/bench at a laptop scale (override with SINEW_BENCH_SMALL /
// SINEW_BENCH_LARGE record counts); run with -v to see the regenerated
// tables. cmd/sinewbench prints the same tables standalone.
package sinew_test

import (
	"os"
	"strconv"
	"sync"
	"testing"

	"github.com/sinewdata/sinew/internal/bench"
)

// Scales: "small" plays the paper's 16M-record in-memory runs, "large" the
// 64M-record disk-bound runs, preserving the 1:4 ratio.
func smallN() int { return envInt("SINEW_BENCH_SMALL", 4000) }
func largeN() int { return envInt("SINEW_BENCH_LARGE", 16000) }

func envInt(name string, def int) int {
	if s := os.Getenv(name); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	return def
}

var (
	fixtures   = map[int]*bench.NoBenchFixture{}
	fixturesMu sync.Mutex
)

// fixture caches loaded NoBench fixtures across benchmarks (loading is
// itself measured once by BenchmarkTable3_Load).
func fixture(b *testing.B, n int) *bench.NoBenchFixture {
	b.Helper()
	fixturesMu.Lock()
	defer fixturesMu.Unlock()
	if f, ok := fixtures[n]; ok {
		return f
	}
	f, err := bench.SetupNoBench(n, 42, 0)
	if err != nil {
		b.Fatal(err)
	}
	fixtures[n] = f
	return f
}

// BenchmarkTable3_Load regenerates Table 3 (load time and storage size):
// each iteration loads the full dataset into all four systems.
func BenchmarkTable3_Load(b *testing.B) {
	n := smallN()
	var tbl *bench.Table
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f, err := bench.SetupNoBench(n, 42, 0)
		if err != nil {
			b.Fatal(err)
		}
		tbl = bench.Table3(f)
	}
	b.Log("\n" + tbl.String())
}

// BenchmarkFigure6_NoBench_Small regenerates Figure 6a (Q1–Q10, the
// in-memory scale).
func BenchmarkFigure6_NoBench_Small(b *testing.B) {
	f := fixture(b, smallN())
	io := bench.WarmCacheIOModel()
	var tbl *bench.Table
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl = bench.Figure6(f, io, 1)
	}
	b.Log("\n" + tbl.String())
}

// BenchmarkFigure6_NoBench_Large regenerates Figure 6b (Q1–Q10 at 4× the
// records under the disk-bound I/O model).
func BenchmarkFigure6_NoBench_Large(b *testing.B) {
	f := fixture(b, largeN())
	io := bench.DiskBoundIOModel(f.DatasetBytes(bench.SysSinew))
	var tbl *bench.Table
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl = bench.Figure6(f, io, 1)
	}
	b.Log("\n" + tbl.String())
}

// BenchmarkFigure7_Join regenerates Figure 7 (NoBench Q11) at both scales,
// with a scratch budget at the large scale that reproduces MongoDB's
// out-of-disk DNF.
func BenchmarkFigure7_Join(b *testing.B) {
	small := fixture(b, smallN())
	var tblSmall, tblLarge *bench.Table
	largeBudget, err := bench.SetupNoBench(largeN(), 42, int64(largeN())*300)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tblSmall = bench.Figure7(small, bench.WarmCacheIOModel(), 1)
		tblLarge = bench.Figure7(largeBudget, bench.DiskBoundIOModel(largeBudget.DatasetBytes(bench.SysSinew)), 1)
	}
	b.Log("\n" + tblSmall.String())
	b.Log("\n" + tblLarge.String())
}

// BenchmarkFigure8_Update regenerates Figure 8 (the random update task).
func BenchmarkFigure8_Update(b *testing.B) {
	f := fixture(b, smallN())
	var tbl *bench.Table
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl = bench.Figure8(f, bench.WarmCacheIOModel(), 1)
	}
	b.Log("\n" + tbl.String())
}

// BenchmarkTable2_QueryPlans regenerates Table 2 (virtual vs physical
// column query plans over the Twitter workload, including runtimes).
func BenchmarkTable2_QueryPlans(b *testing.B) {
	var tbl *bench.Table
	for i := 0; i < b.N; i++ {
		f, err := bench.SetupTwitter(smallN(), 11)
		if err != nil {
			b.Fatal(err)
		}
		tbl, err = bench.Table2(f, true)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + tbl.String())
}

// BenchmarkTable4_Serialization regenerates Appendix A's Table 4.
func BenchmarkTable4_Serialization(b *testing.B) {
	var tbl *bench.Table
	for i := 0; i < b.N; i++ {
		var err error
		tbl, err = bench.Table4(smallN(), 3)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + tbl.String())
}

// BenchmarkTable5_VirtualOverhead regenerates Appendix B's Table 5.
func BenchmarkTable5_VirtualOverhead(b *testing.B) {
	var tbl *bench.Table
	for i := 0; i < b.N; i++ {
		f, err := bench.SetupTwitter(smallN(), 5)
		if err != nil {
			b.Fatal(err)
		}
		tbl, err = bench.Table5(f, 2)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + tbl.String())
}

// BenchmarkAblationHybrid compares all-virtual / hybrid / all-physical
// schemas (DESIGN.md ablation 1).
func BenchmarkAblationHybrid(b *testing.B) {
	var tbl *bench.Table
	for i := 0; i < b.N; i++ {
		var err error
		tbl, err = bench.AblationHybrid(smallN()/2, 9)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + tbl.String())
}

// BenchmarkAblationDirtyCoalesce measures the dirty-column COALESCE
// penalty (DESIGN.md ablation 4).
func BenchmarkAblationDirtyCoalesce(b *testing.B) {
	var tbl *bench.Table
	for i := 0; i < b.N; i++ {
		var err error
		tbl, err = bench.AblationDirtyCoalesce(smallN(), 13, 3)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + tbl.String())
}

// BenchmarkAblationPolicy sweeps materialization thresholds (ablation 5).
func BenchmarkAblationPolicy(b *testing.B) {
	var tbl *bench.Table
	for i := 0; i < b.N; i++ {
		var err error
		tbl, err = bench.AblationPolicy(smallN()/2, 17)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + tbl.String())
}

// BenchmarkAblationBinarySearch isolates the sorted-header design
// (ablation 2).
func BenchmarkAblationBinarySearch(b *testing.B) {
	var tbl *bench.Table
	for i := 0; i < b.N; i++ {
		var err error
		tbl, err = bench.AblationBinarySearch(smallN(), 21)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + tbl.String())
}

// BenchmarkAblationArrays compares array storage strategies (ablation 7).
func BenchmarkAblationArrays(b *testing.B) {
	var tbl *bench.Table
	for i := 0; i < b.N; i++ {
		var err error
		tbl, err = bench.AblationArrays(smallN()/2, 23)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + tbl.String())
}
