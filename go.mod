module github.com/sinewdata/sinew

go 1.22
