GO ?= go

.PHONY: all build test vet race check bench fmt

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# check is the gate CI runs: static analysis plus the full test suite
# under the race detector (the parallel partitioned scan is the main
# concurrency surface).
check: vet race

bench:
	$(GO) test -bench . -benchmem -run '^$$' ./internal/bench/

fmt:
	gofmt -w $$($(GO) list -f '{{.Dir}}' ./...)
