GO ?= go

.PHONY: all build test vet lint race race-workers race-sessions stress-sessions check bench bench-diff fuzz fmt

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# lint runs sinewlint, the project's own stdlib-only analyzer: Close()
# propagation through iterator trees, mutex discipline, exhaustive
# datum-tag switches, plan-cache key completeness, and unchecked errors
# on the storage/serialization paths. See DESIGN.md "Invariants & static
# checks".
lint:
	$(GO) run ./cmd/sinewlint ./...

race:
	$(GO) test -race ./...

# race-workers re-runs the executor differential tests (row vs batch vs
# parallel pipelines) under the race detector at several GOMAXPROCS
# settings: 1 forces serial plans, 2 and 8 vary worker counts and
# goroutine interleavings through the morsel-driven pipelines. The final
# leg drives striped segment scans (frozen pages shared across parallel
# partitions, plus the UPDATE un-freeze path) end to end.
race-workers:
	GOMAXPROCS=1 $(GO) test -race -count=1 -run 'TestProperty|TestParallel' ./internal/rdbms/exec/
	GOMAXPROCS=2 $(GO) test -race -count=1 -run 'TestProperty|TestParallel' ./internal/rdbms/exec/
	GOMAXPROCS=8 $(GO) test -race -count=1 -run 'TestProperty|TestParallel' ./internal/rdbms/exec/
	GOMAXPROCS=8 $(GO) test -race -count=1 ./internal/rdbms/plan/ ./internal/core/
	GOMAXPROCS=8 $(GO) test -race -count=1 -run 'TestStriped|TestPropertyStriped|TestSinewStats' ./internal/rdbms/exec/ ./internal/core/

# race-sessions drives the concurrent-session surface added with sinewd
# (DESIGN.md §10): the mixed writer/reader stress harness, the
# snapshot-isolation differential test (every snapshot read must equal
# the serial replay at its pinned epoch, across row/batch/striped/
# parallel plans), and the HTTP end-to-end test. GOMAXPROCS=1 forces
# cooperative interleavings, 2 and 8 vary true parallelism.
race-sessions:
	GOMAXPROCS=1 $(GO) test -race -count=1 -run 'TestSnapshot' ./internal/rdbms/
	GOMAXPROCS=2 $(GO) test -race -count=1 -run 'TestSnapshot' ./internal/rdbms/
	GOMAXPROCS=8 $(GO) test -race -count=1 -run 'TestSnapshot' ./internal/rdbms/
	GOMAXPROCS=8 $(GO) test -race -count=1 ./internal/service/
	GOMAXPROCS=8 $(GO) test -race -count=1 -run 'TestSinewStatsSnapshot' ./internal/core/

# stress-sessions soaks the same harness for ~30s (CI runs it as a
# non-blocking job; locally it is a good pre-merge smoke for scheduler-
# dependent interleavings the quick legs may miss).
stress-sessions:
	GOMAXPROCS=8 $(GO) test -race -count=10 -timeout 10m -run 'TestSnapshotStress|TestSnapshotIsolation' ./internal/rdbms/

# check is the gate CI runs: static analysis plus the full test suite
# under the race detector (the parallel pipelines are the main
# concurrency surface), with extra GOMAXPROCS legs for the executor and
# the concurrent-session/snapshot surface.
check: vet lint race race-workers race-sessions

# fuzz exercises the serializer's read side (the same target CI runs as a
# non-blocking job); the checked-in corpus lives in
# internal/serial/testdata/fuzz/.
fuzz:
	$(GO) test -fuzz=FuzzRecordReaders -fuzztime=30s ./internal/serial/

# bench runs the micro-benchmarks and regenerates BENCH_PR10.json, the
# machine-readable Figure 6 + Table 5 + plan-cache report (ns/op and
# allocs/op per query) that tracks the perf trajectory across PRs.
bench:
	$(GO) test -bench . -benchmem -run '^$$' ./internal/bench/
	$(GO) run ./cmd/sinewbench -json BENCH_PR10.json -small 4000

# bench-diff gates the perf trajectory: it fails when any Figure 6 query
# or Table 5 row in BENCH_PR10.json regressed more than 10% against
# BENCH_PR8.json, the freshest prior baseline, in ns/op or allocs/op.
# (benchdiff defaults its baseline to the newest BENCH_PR*.json; the pin
# keeps the gate explicit.)
bench-diff:
	$(GO) run ./cmd/benchdiff -baseline BENCH_PR8.json -new BENCH_PR10.json -tolerance 10

fmt:
	gofmt -w $$($(GO) list -f '{{.Dir}}' ./...)
