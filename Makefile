GO ?= go

.PHONY: all build test vet race check bench fmt

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# check is the gate CI runs: static analysis plus the full test suite
# under the race detector (the parallel partitioned scan is the main
# concurrency surface).
check: vet race

# bench runs the micro-benchmarks and regenerates BENCH_PR2.json, the
# machine-readable Figure 6 + Table 5 + plan-cache report (ns/op and
# allocs/op per query) that tracks the perf trajectory across PRs.
bench:
	$(GO) test -bench . -benchmem -run '^$$' ./internal/bench/
	$(GO) run ./cmd/sinewbench -json BENCH_PR2.json -small 4000

fmt:
	gofmt -w $$($(GO) list -f '{{.Dir}}' ./...)
