// Twitter analytics: the workload that motivates the paper's §3.1.1 —
// deeply nested, sparse tweet objects queried with multi-way SQL joins
// (Table 1), and the optimizer-visible difference between virtual and
// physical columns (Table 2).
//
// Run with: go run ./examples/twitter
package main

import (
	"fmt"
	"log"
	"strings"

	sinew "github.com/sinewdata/sinew"
	"github.com/sinewdata/sinew/internal/twittergen"
)

func main() {
	db := sinew.Open(sinew.DefaultConfig())
	for _, c := range []string{"tweets", "deletes"} {
		if err := db.CreateCollection(c); err != nil {
			log.Fatal(err)
		}
	}
	const n = 5000
	cfg := twittergen.DefaultConfig(n)
	if _, err := db.LoadDocuments("tweets", twittergen.GenerateTweets(n, 7, cfg)); err != nil {
		log.Fatal(err)
	}
	if _, err := db.LoadDocuments("deletes", twittergen.GenerateDeletes(n, 7, 0.2, cfg)); err != nil {
		log.Fatal(err)
	}

	// Tighten the planner's work_mem proxy so the scaled cardinalities
	// cross it the way the paper's 10M-tweet corpus crossed Postgres's.
	db.RDBMS().PlanConfig().HashAggMaxGroups = 500

	distinctUsers := `SELECT DISTINCT "user.id" FROM tweets`

	// With everything virtual the optimizer sees a fixed default estimate
	// through the extraction UDF and picks HashAggregate.
	plan, err := db.Explain(distinctUsers)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("plan with user.id VIRTUAL:")
	fmt.Println(indent(plan))

	// Materialize the hot columns and gather statistics; the same query
	// now plans with a sort-based Unique (the paper's Table 2 flip).
	mat := sinew.NewMaterializer(db)
	for _, key := range []string{"user.id", "user.lang", "user.screen_name", "retweet_count"} {
		if err := db.SetMaterialized("tweets", key, true); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := mat.RunOnce("tweets"); err != nil {
		log.Fatal(err)
	}
	if err := db.RDBMS().Analyze("tweets"); err != nil {
		log.Fatal(err)
	}
	plan, err = db.Explain(distinctUsers)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("plan with user.id PHYSICAL (after materialization + ANALYZE):")
	fmt.Println(indent(plan))

	// Table 1's analytics run unchanged against the logical view.
	queries := []string{
		`SELECT SUM(retweet_count) FROM tweets GROUP BY "user.id" LIMIT 5`,
		`SELECT "user.id" FROM tweets t1, deletes d1
		   WHERE t1.id_str = d1."delete.status.id_str" AND t1."user.lang" = 'msa'`,
		`SELECT "user.screen_name", COUNT(*) AS tweets FROM tweets
		   GROUP BY "user.screen_name" ORDER BY COUNT(*) DESC LIMIT 3`,
	}
	for _, q := range queries {
		res, err := db.Query(q)
		if err != nil {
			log.Fatalf("%s: %v", q, err)
		}
		fmt.Printf("%s\n  -> %d rows", strings.Join(strings.Fields(q), " "), len(res.Rows))
		if len(res.Rows) > 0 {
			fmt.Printf(", first: %v", res.Rows[0])
		}
		fmt.Println()
	}
}

func indent(s string) string {
	return "  " + strings.ReplaceAll(strings.TrimRight(s, "\n"), "\n", "\n  ")
}
