// Textsearch demonstrates §4.3: the inverted text index over all
// attributes, predicate pushdown through matches(), and storing fully
// unstructured text alongside semi-structured data.
//
// Run with: go run ./examples/textsearch
package main

import (
	"fmt"
	"log"
	"strings"

	sinew "github.com/sinewdata/sinew"
)

func main() {
	cfg := sinew.DefaultConfig()
	cfg.EnableTextIndex = true
	db := sinew.Open(cfg)
	if err := db.CreateCollection("articles"); err != nil {
		log.Fatal(err)
	}

	// Semi-structured records and one "completely unstructured" record
	// (just a text blob under a generic key) live side by side.
	docs := `{"id":1,"title":"Sinew: a SQL system","body":"stores multi-structured data in relational systems","tags":["databases","sql"]}
{"id":2,"title":"NoSQL at scale","body":"document stores trade schema flexibility for query power","tags":["nosql"]}
{"id":3,"title":"Query optimization","body":"statistics drive plan selection in relational optimizers"}
{"id":4,"text":"raw unstructured note: remember to benchmark the relational storage layer"}`
	if _, err := db.LoadJSONLines("articles", strings.NewReader(docs)); err != nil {
		log.Fatal(err)
	}

	// Full-text search across every column (the §4.3 sample query shape).
	queries := []string{
		`SELECT id FROM articles WHERE matches('*', 'relational')`,
		`SELECT id FROM articles WHERE matches('body', 'relational')`,
		`SELECT id FROM articles WHERE matches('*', '"multi structured"')`,
		`SELECT id FROM articles WHERE matches('title', 'quer*')`,
		`SELECT id FROM articles WHERE matches('*', 'schema OR statistics')`,
		`SELECT id, title FROM articles WHERE matches('tags', 'sql') AND id < 3`,
	}
	for _, q := range queries {
		res, err := db.Query(q)
		if err != nil {
			log.Fatalf("%s: %v", q, err)
		}
		var ids []string
		for _, row := range res.Rows {
			ids = append(ids, row[0].String())
		}
		fmt.Printf("%-72s -> ids [%s]\n", q, strings.Join(ids, " "))
	}
}
