// Webrequests walks through the paper's running example (Figures 2–4 and
// §3.2.2): the logical view over heterogeneous web-request documents, the
// rewrite of queries over virtual columns, the schema analyzer's
// materialization decisions, and the incremental column materializer with
// COALESCE-correct queries over dirty columns.
//
// Run with: go run ./examples/webrequests
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	sinew "github.com/sinewdata/sinew"
	"github.com/sinewdata/sinew/internal/jsonx"
)

func main() {
	db := sinew.Open(sinew.Config{DensityThreshold: 0.6, CardinalityThreshold: 50})
	if err := db.CreateCollection("webrequests"); err != nil {
		log.Fatal(err)
	}

	// Figure 2's two documents...
	seedDocs := `{"url":"www.sample-site.com","hits":22,"avg_site_visit":128.5,"country":"pl"}
{"url":"www.sample-site2.com","hits":15,"date":"8/19/13","ip":"123.45.67.89","owner":"John P. Smith"}`
	if _, err := db.LoadJSONLines("webrequests", strings.NewReader(seedDocs)); err != nil {
		log.Fatal(err)
	}

	// ...plus a realistic tail so the analyzer has statistics to work with.
	r := rand.New(rand.NewSource(1))
	var bulk []*jsonx.Doc
	for i := 0; i < 500; i++ {
		d := jsonx.NewDoc()
		d.Set("url", jsonx.StringValue(fmt.Sprintf("www.site-%03d.example", r.Intn(400))))
		d.Set("hits", jsonx.IntValue(int64(r.Intn(1000))))
		if r.Intn(3) > 0 {
			d.Set("country", jsonx.StringValue([]string{"pl", "us", "de", "jp"}[r.Intn(4)]))
		}
		if r.Intn(10) == 0 {
			d.Set("owner", jsonx.StringValue(fmt.Sprintf("Owner %d", r.Intn(50))))
		}
		bulk = append(bulk, d)
	}
	if _, err := db.LoadDocuments("webrequests", bulk); err != nil {
		log.Fatal(err)
	}

	// The §3.1.1 example query, straight SQL over the logical view.
	show(db, `SELECT url FROM webrequests WHERE hits > 20 LIMIT 3`)

	// §3.2.2's rewrite example: 'owner' is a virtual column.
	sql := `SELECT url, owner FROM webrequests WHERE ip IS NOT NULL`
	rewritten, err := db.RewrittenSQL(sql)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("logical:  ", sql)
	fmt.Println("rewritten:", rewritten)
	fmt.Println()

	// The schema analyzer decides what earns a physical column (§3.1.3).
	decisions, err := db.AnalyzeSchema("webrequests")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("schema analyzer decisions:")
	for _, d := range decisions {
		fmt.Printf("  %-16s density=%.2f cardinality=%-5d materialize=%v\n",
			d.Key, d.Density, d.Cardinality, d.Materialize)
	}
	fmt.Println()

	// The materializer moves values row by row; pause it mid-pass and the
	// same query still answers correctly through COALESCE (§3.1.4).
	mat := sinew.NewMaterializer(db)
	mat.Pause()
	if _, err := mat.RunOnce("webrequests"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("materializer paused mid-pass; url/hits are dirty:")
	dirtySQL, _ := db.RewrittenSQL(`SELECT url FROM webrequests WHERE hits > 900`)
	fmt.Println("  rewrite:", dirtySQL)
	show(db, `SELECT COUNT(*) FROM webrequests WHERE hits > 900`)

	mat.Resume()
	moved, err := mat.RunOnce("webrequests")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("materializer finished: moved %d values\n", moved)
	if err := db.RDBMS().Analyze("webrequests"); err != nil {
		log.Fatal(err)
	}
	cleanSQL, _ := db.RewrittenSQL(`SELECT url FROM webrequests WHERE hits > 900`)
	fmt.Println("  rewrite now:", cleanSQL)
	show(db, `SELECT COUNT(*) FROM webrequests WHERE hits > 900`)
}

func show(db *sinew.DB, sql string) {
	res, err := db.Query(sql)
	if err != nil {
		log.Fatalf("%s: %v", sql, err)
	}
	fmt.Println(sql)
	for _, row := range res.Rows {
		cells := make([]string, len(row))
		for i, d := range row {
			cells[i] = d.String()
		}
		fmt.Println("  ", strings.Join(cells, " | "))
	}
	fmt.Println()
}
