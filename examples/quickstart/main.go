// Quickstart: load schemaless JSON and query it with standard SQL.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	sinew "github.com/sinewdata/sinew"
)

func main() {
	db := sinew.Open(sinew.DefaultConfig())
	if err := db.CreateCollection("events"); err != nil {
		log.Fatal(err)
	}

	// No schema was declared — the documents define it as they arrive,
	// and later documents may add keys freely.
	docs := strings.Join([]string{
		`{"kind":"signup","user":"ada","plan":"free"}`,
		`{"kind":"signup","user":"grace","plan":"pro","referrer":"ada"}`,
		`{"kind":"purchase","user":"grace","amount":49.99,"items":["disk","cable"]}`,
		`{"kind":"purchase","user":"ada","amount":9.5,"items":["cable"]}`,
		`{"kind":"login","user":"ada","device":{"os":"linux","mobile":false}}`,
	}, "\n")
	res, err := db.LoadJSONLines("events", strings.NewReader(docs))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d documents, %d attributes discovered\n\n", res.Documents, res.NewAttributes)

	// Standard SQL over the universal-relation view: every key is a
	// column, nested keys are dot-delimited, absent keys read as NULL.
	queries := []string{
		`SELECT user, amount FROM events WHERE kind = 'purchase' ORDER BY amount DESC`,
		`SELECT kind, COUNT(*) FROM events GROUP BY kind ORDER BY kind`,
		`SELECT user FROM events WHERE referrer IS NOT NULL`,
		`SELECT user FROM events WHERE "device.os" = 'linux'`,
		`SELECT user FROM events WHERE 'disk' IN items`,
	}
	for _, q := range queries {
		out, err := db.Query(q)
		if err != nil {
			log.Fatalf("%s: %v", q, err)
		}
		fmt.Println(q)
		for _, row := range out.Rows {
			cells := make([]string, len(row))
			for i, d := range row {
				cells[i] = d.String()
			}
			fmt.Println("  ", strings.Join(cells, " | "))
		}
		fmt.Println()
	}
}
